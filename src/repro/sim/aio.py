"""Async programs on the deterministic simulator — the event-loop shim.

The real asyncio runtime (:mod:`repro.instrument.aio`) cannot enumerate
task interleavings: the production event loop schedules callbacks
opportunistically.  But coroutine yield points are *explicit*, which is
exactly what the model checker needs — so this module bridges ``async
def`` scenarios onto the existing :class:`~repro.sim.scheduler.SimScheduler`
and, through it, onto the PR 2 exploration engine:

* an ``async def`` program awaits :class:`AioSimLock` operations and
  :func:`asleep`/:func:`alog` checkpoints; each await suspends the
  coroutine and hands the scheduler a regular :mod:`repro.sim.actions`
  object (coroutines expose the same ``send`` protocol as generators, so
  the scheduler drives them unchanged — each simulated "thread" *is* an
  asyncio-style task, and the schedule policy decides which task the
  simulated loop resumes next),
* :func:`async_program` adapts an ``async def`` function into the
  program-factory shape :meth:`SimScheduler.add_thread` expects,
* :func:`build_aio_two_lock_inversion` / :func:`build_aio_philosophers`
  are the canonical async scenarios, registered in
  :data:`repro.sim.explore.SCENARIOS` so the
  :class:`~repro.sim.explore.Explorer`, the
  :class:`~repro.sim.explore.ImmunityChecker`, the replay fixtures, and
  the harness matrix cover asyncio programs exactly like threaded ones.

Because the scheduler is shared, everything from PR 2 applies verbatim:
bounded exhaustive DFS, sleep sets under ``NullBackend``, preemption
bounding, record/replay of :class:`~repro.sim.schedule.ScheduleTrace`
(slots are task registration indices), greedy shrinking, and the
immunity claim checked over *all* bounded task interleavings.
"""

from __future__ import annotations

from typing import Callable, Coroutine, Optional, Sequence, Union

from ..core.callstack import CallStack
from .actions import Acquire, Compute, Log, Release, TryAcquire, call_site
from .backends import SchedulerBackend
from .locks import SimLock
from .scheduler import SimScheduler

#: Type of the site argument accepted by the aio lock operations.
Site = Union[CallStack, Sequence[str], None]


class _ActionAwaitable:
    """Awaitable that yields one scheduler action and returns its result.

    The innermost ``yield`` of an ``__await__`` generator surfaces through
    every level of ``coroutine.send`` — the scheduler receives the action
    exactly as if a plain generator program had yielded it, and the value
    it sends back (e.g. a :class:`TryAcquire` outcome) becomes the value
    of the ``await`` expression.
    """

    __slots__ = ("action",)

    def __init__(self, action):
        self.action = action

    def __await__(self):
        result = yield self.action
        return result


def perform(action):
    """Await-able form of a raw scheduler action (escape hatch)."""
    return _ActionAwaitable(action)


async def asleep(duration: float):
    """Spend ``duration`` seconds of virtual time (``asyncio.sleep`` analogue)."""
    await _ActionAwaitable(Compute(duration))


async def alog(message: str):
    """Record a message in the simulation log."""
    await _ActionAwaitable(Log(message))


class AioSimLock:
    """Async facade over a :class:`~repro.sim.locks.SimLock`.

    The simulated counterpart of
    :class:`~repro.instrument.aio.AioLock`: ``await lock.acquire()``
    suspends the task until the scheduler grants the lock (consulting the
    avoidance backend first), ``async with lock`` brackets a critical
    section.  Lock-related awaits carry an explicit symbolic call site,
    like every simulated lock operation.
    """

    def __init__(self, lock: SimLock):
        self._lock = lock

    @property
    def lock(self) -> SimLock:
        """The underlying simulated lock."""
        return self._lock

    @property
    def name(self) -> str:
        """Name of the underlying simulated lock."""
        return self._lock.name

    @property
    def lock_id(self) -> int:
        """Engine-level id of the underlying simulated lock."""
        return self._lock.lock_id

    async def acquire(self, site: Site = None) -> bool:
        """Acquire the lock (blocking in virtual time); always True."""
        await _ActionAwaitable(Acquire(self._lock, site))
        return True

    async def try_acquire(self, site: Site = None) -> bool:
        """Attempt a non-blocking acquisition; True when it succeeded."""
        return bool(await _ActionAwaitable(TryAcquire(self._lock, site)))

    async def release(self) -> None:
        """Release the lock (must be held by the awaiting task)."""
        await _ActionAwaitable(Release(self._lock))

    async def __aenter__(self) -> "AioSimLock":
        await self.acquire()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        await self.release()
        return False


def new_aio_lock(scheduler: SimScheduler, name: Optional[str] = None) -> AioSimLock:
    """Create a scheduler-owned lock wrapped in its async facade."""
    return AioSimLock(scheduler.new_lock(name))


def async_program(coro_factory: Callable[..., Coroutine], *args,
                  **kwargs) -> Callable[[], Coroutine]:
    """Adapt an ``async def`` function into a SimThread program factory.

    Coroutines implement the generator ``send`` protocol, so the returned
    factory plugs straight into :meth:`SimScheduler.add_thread`; this
    helper only freezes the arguments::

        scheduler.add_thread(async_program(worker, lock_a, lock_b),
                             name="task-1")
    """

    def factory() -> Coroutine:
        return coro_factory(*args, **kwargs)

    return factory


# ---------------------------------------------------------------------------
# Reusable async programs and canonical scenarios
# ---------------------------------------------------------------------------

def aio_lock_order_program(first: AioSimLock, second: AioSimLock, label: str,
                           hold_time: float = 0.0
                           ) -> Callable[[], Coroutine]:
    """The paper's ``update(x, y)`` routine as an ``async def`` task.

    Structurally identical to
    :func:`repro.sim.programs.lock_order_program` — two tasks calling
    this with swapped locks reproduce the section 4 inversion on an
    event loop.
    """

    async def program():
        await first.acquire(call_site("alock:3", f"aupdate:{label}", "amain:0"))
        await asleep(hold_time)
        await second.acquire(call_site("alock:4", f"aupdate:{label}", "amain:0"))
        await asleep(hold_time)
        await second.release()
        await first.release()
        await alog(f"done via {label}")

    return async_program(program)


def aio_philosopher_program(left: AioSimLock, right: AioSimLock, seat: int,
                            meals: int = 1, eat_time: float = 0.001
                            ) -> Callable[[], Coroutine]:
    """A dining philosopher task picking up ``left`` then ``right``."""

    async def program():
        for _meal in range(meals):
            await left.acquire(call_site("apickup_left:11", f"adine:{seat}",
                                         "amain:0"))
            await asleep(eat_time / 2)
            await right.acquire(call_site("apickup_right:12", f"adine:{seat}",
                                          "amain:0"))
            await asleep(eat_time)
            await right.release()
            await left.release()

    return async_program(program)


def build_aio_two_lock_inversion(backend: SchedulerBackend,
                                 hold_time: float = 0.0) -> SimScheduler:
    """Async section 4 example: update(A, B) racing update(B, A) as tasks."""
    scheduler = SimScheduler(backend=backend)
    lock_a = new_aio_lock(scheduler, "aio-A")
    lock_b = new_aio_lock(scheduler, "aio-B")
    scheduler.add_thread(aio_lock_order_program(lock_a, lock_b, "s1",
                                                hold_time=hold_time),
                         name="task-fwd")
    scheduler.add_thread(aio_lock_order_program(lock_b, lock_a, "s2",
                                                hold_time=hold_time),
                         name="task-rev")
    return scheduler


def build_aio_philosophers(backend: SchedulerBackend, seats: int = 3,
                           meals: int = 1,
                           eat_time: float = 0.001) -> SimScheduler:
    """Dining philosopher tasks, all grabbing the left fork first."""
    scheduler = SimScheduler(backend=backend)
    forks = [new_aio_lock(scheduler, f"aio-fork-{i}") for i in range(seats)]
    for seat in range(seats):
        scheduler.add_thread(aio_philosopher_program(
            forks[seat], forks[(seat + 1) % seats], seat,
            meals=meals, eat_time=eat_time),
            name=f"aio-philosopher-{seat}")
    return scheduler
