"""Source-DPOR race reversal for the schedule-exploration engine.

Sleep sets (PR 2) prune an ordering only when a *sibling branch already
pushed onto the frontier* covers it — the search still pushes every
alternative at every free choice point and prunes later.  Dynamic
partial-order reduction inverts that: explore *one* schedule, detect the
**races** it executed (pairs of dependent steps by different threads that
were co-enabled, i.e. adjacent in the happens-before order), and seed the
frontier with exactly the *reversals* of those races.  Orderings that
differ only in the interleaving of independent steps are never generated
at all, which is why DPOR prunes strictly more than sleep sets on the
same dependence relation.

The implementation here is the classic Flanagan/Godefroid race-reversal
loop in *source style*: a per-prefix "done" book (:class:`BacktrackBook`)
plays the role of source sets — a reversal is admitted only when no
explored or already-admitted branch from that prefix starts with the same
thread — and every admitted branch carries the previously explored
branches as a sleep set, so redundant recombinations are cut early.
Exploration proceeds in deterministic **waves** (run every frontier node,
*then* admit all discovered reversals in run/event order), which makes
the explored set a pure fixpoint of the seeding relation: the same
scenario explores the same runs in the same order no matter how the wave
is executed — serially or split across OS worker processes
(:mod:`repro.sim.parexplore`).

Dependence relation.  Two visible steps are *dependent* iff they touch
the same resource slot and they are not both SHARED-mode acquisitions
(two rwlock readers commute; everything else on one resource — exclusive
acquires, permit takes, releases — does not).  This is exact for the
pure resource semantics of :class:`~repro.sim.backends.NullBackend`.
For engine-backed backends an avoidance decision on one lock can depend
on holders of *other* locks, so per-resource dependence is a heuristic
there — which is precisely why ``tests/explore/test_differential.py``
re-proves, for every registered scenario and both backend families, that
DPOR's deadlock-signature set equals the unreduced full-DFS set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.signature import SHARED

#: Visible-operation kinds recorded per event (see :class:`RunObservation`).
ACQUIRE = "acquire"   # successful acquisition (direct or FIFO hand-over)
BLOCK = "block"       # acquire attempt that parks on the waiter queue
TRY = "try"
RELEASE = "release"
YIELD = "yield"       # attempt denied by the avoidance engine (parked)


@dataclass(frozen=True)
class Seed:
    """One race reversal: force ``slot`` at choice ``position`` of ``prefix``.

    ``lock`` is the resource slot the seeded thread's step touches at that
    state — carried so later siblings admitted from the same prefix can
    put this branch to sleep with its footprint.
    """

    prefix: Tuple[int, ...]
    position: int
    slot: int
    lock: Optional[int]


@dataclass
class RunObservation:
    """What one exploration run exposes to race analysis.

    * ``events`` — the visible (resource-touching) steps in execution
      order: ``(slot, lock_slot, position, kind, mode)`` where
      ``position`` is the choice point that scheduled the step (``None``
      when only one thread was runnable — no branch exists there).
    * ``choices_at`` — for every *seedable* choice position (all
      candidates visible): ``(chosen_slot, ((slot, lock_slot), ...))``
      over the full candidate pool, ascending slot order.
    * ``taken`` — the slot taken at every choice position, so
      ``tuple(taken[:p])`` is the exact forced prefix that re-drives the
      run up to position ``p``.
    """

    events: List[Tuple[int, Optional[int], Optional[int], str, str]] = \
        field(default_factory=list)
    choices_at: Dict[int, Tuple[int, Tuple[Tuple[int, Optional[int]], ...]]] = \
        field(default_factory=dict)
    taken: List[int] = field(default_factory=list)


def dependent(kind_a: str, mode_a: str, kind_b: str, mode_b: str) -> bool:
    """Dependence of two same-resource visible steps (see module docstring).

    Beyond the SHARED-readers rule, two commutation facts of the FIFO
    hand-over semantics shrink the relation considerably:

    * a *blocked* acquire attempt commutes with a release — attempt-then-
      release (park, then hand-over grant) and release-then-attempt
      (direct grant) reach the identical state, so their order is never
      worth reversing;
    * two releases commute — freed capacity is granted strictly FIFO from
      the waiter queue, so the grant assignment is independent of which
      release ran first.

    A *successful* acquire does not commute with a release (on capacity
    resources it can barge ahead of a queued waiter the release would
    have served), and blocked attempts do not commute with each other
    (their order is the FIFO queue order).

    A ``YIELD`` — an attempt the avoidance engine parked — commutes with
    nothing (see :func:`pair_dependent`): the engine's decision reads the
    holders of *other* locks, so a yield is dependent even on
    different-resource steps.
    """
    if YIELD in (kind_a, kind_b):
        return True
    if RELEASE in (kind_a, kind_b):
        other = kind_a if kind_b == RELEASE else kind_b
        return other not in (RELEASE, BLOCK)
    acquiring_a = kind_a in (ACQUIRE, TRY)
    acquiring_b = kind_b in (ACQUIRE, TRY)
    if acquiring_a and acquiring_b and mode_a == SHARED and mode_b == SHARED:
        return False
    return True


def pair_dependent(event_a: Tuple[int, Optional[int], Optional[int], str, str],
                   event_b: Tuple[int, Optional[int], Optional[int], str, str],
                   ) -> bool:
    """Dependence of two events, including the cross-resource cases.

    Different-resource steps are independent under pure lock semantics —
    *except* when either is a ``YIELD``: an avoidance decision on one
    lock is a function of the holders of every lock in the matched
    signature, so a yield must be ordered against every other visible
    step for race reversal to restore the interleavings the engine's
    state-coupling can distinguish.
    """
    _slot_a, lock_a, _pos_a, kind_a, mode_a = event_a
    _slot_b, lock_b, _pos_b, kind_b, mode_b = event_b
    if YIELD in (kind_a, kind_b):
        return True
    if lock_a is None or lock_a != lock_b:
        return False
    return dependent(kind_a, mode_a, kind_b, mode_b)


def find_races(observation: RunObservation) -> List[Seed]:
    """Race reversals of one run, in event order (deterministic).

    For each visible event *j*, find the last earlier dependent event *i*
    on the same resource.  The pair is a **race** when *i* was performed
    by a different thread and is *concurrent* with *j* — not already
    ordered before it through other dependence edges.  Concurrency is
    decided with vector clocks over the run's dependence edges (program
    order plus same-resource dependence); without this check every pair
    of same-lock touches would seed a reversal, including ones that are
    transitively ordered through other locks and whose reversal only
    re-explores covered ground.  For a race, seed the reversal at *i*'s
    choice point — thread of *j* if it was a candidate there, otherwise
    every candidate (the classic DPOR fallback when the racing thread
    was not yet enabled).  Events scheduled without a choice point carry
    no reversal: only one thread was runnable, so the race is not
    reversible at that state (and classic DPOR's backtrack addition
    degenerates to the empty set too).
    """
    seeds: List[Seed] = []
    events = observation.events
    taken = observation.taken
    clocks: List[Dict[int, int]] = []  # per-event vector clock
    thread_clock: Dict[int, Dict[int, int]] = {}
    counters: Dict[int, int] = {}
    for j, event_j in enumerate(events):
        slot_j = event_j[0]
        pre = dict(thread_clock.get(slot_j, ()))  # program-order past of j
        for i in range(j - 1, -1, -1):
            event_i = events[i]
            if not pair_dependent(event_i, event_j):
                continue
            slot_i, _lock_i, pos_i, _kind_i, _mode_i = event_i
            if slot_i == slot_j:
                break  # program order: no race, and earlier deps are covered
            if all(tick <= pre.get(s, 0) for s, tick in clocks[i].items()):
                break  # i already happens-before j via other edges: no race
            if pos_i is None:
                break  # single-candidate state: nothing to reverse
            entry = observation.choices_at.get(pos_i)
            if entry is None:
                break  # invisible candidates pending: not a seedable state
            chosen, candidates = entry
            prefix = tuple(taken[:pos_i])
            slots = [s for s, _lock in candidates]
            if slot_j in slots:
                if slot_j != chosen:
                    lock = dict(candidates)[slot_j]
                    seeds.append(Seed(prefix, pos_i, slot_j, lock))
            else:
                seeds.extend(Seed(prefix, pos_i, s, lock)
                             for s, lock in candidates if s != chosen)
            break  # only the *last* dependent event forms the race with j
        # Advance the clocks: j's clock joins its thread's past with every
        # earlier dependent event (the dependence edges of the run).
        clock = pre
        for i in range(j):
            if not pair_dependent(events[i], event_j):
                continue
            for s, tick in clocks[i].items():
                if tick > clock.get(s, 0):
                    clock[s] = tick
        counters[slot_j] = counters.get(slot_j, 0) + 1
        clock[slot_j] = counters[slot_j]
        clocks.append(clock)
        thread_clock[slot_j] = clock
    return seeds


class BacktrackBook:
    """Per-prefix record of explored branches — DPOR's source/done sets.

    ``mark_taken`` records that some run continued ``prefix`` with
    ``slot`` (the branch has been initiated; its interior is covered by
    that run's own race analysis).  ``admit`` filters a deterministic
    seed stream against the book, marks every admitted seed, and attaches
    the previously explored branches of its prefix as a sleep set.
    """

    def __init__(self) -> None:
        self._done: Dict[Tuple[int, ...], Dict[int, Optional[int]]] = {}

    def mark_taken(self, prefix: Tuple[int, ...], slot: int,
                   lock: Optional[int]) -> None:
        """Record an explored branch (idempotent)."""
        self._done.setdefault(prefix, {}).setdefault(slot, lock)

    def mark_run(self, observation: RunObservation) -> None:
        """Record every branch a finished run took at its choice points."""
        taken = observation.taken
        for position, (chosen, candidates) in observation.choices_at.items():
            lock = dict(candidates).get(chosen)
            self.mark_taken(tuple(taken[:position]), chosen, lock)

    def explored_at(self, prefix: Tuple[int, ...]) -> Dict[int, Optional[int]]:
        """Branches explored from ``prefix`` so far (slot -> footprint)."""
        return dict(self._done.get(prefix, {}))

    def admit(self, seeds: List[Seed]) -> List[Tuple[Seed, Tuple[Tuple[int, Optional[int]], ...]]]:
        """Filter ``seeds`` to the fresh ones, in order, with sleep sets.

        Returns ``(seed, sleep_entries)`` pairs; ``sleep_entries`` are the
        ``(slot, lock)`` branches already explored from the seed's prefix
        at admission time (including seeds admitted earlier in this very
        call — left-to-right sibling sleep, exactly like the DFS push).
        """
        fresh: List[Tuple[Seed, Tuple[Tuple[int, Optional[int]], ...]]] = []
        for seed in seeds:
            done = self._done.setdefault(seed.prefix, {})
            if seed.slot in done:
                continue
            sleep = tuple(sorted(done.items()))
            done[seed.slot] = seed.lock
            fresh.append((seed, sleep))
        return fresh


#: Sleep-insertion map of a frontier node: position -> ((slot, lock), ...).
SleepAt = Dict[int, Tuple[Tuple[int, Optional[int]], ...]]


def admit_wave(book: BacktrackBook,
               observations: List[Optional[RunObservation]],
               ) -> List[Tuple[Tuple[int, ...], SleepAt]]:
    """One wave step: mark every run, then admit its races in order.

    The two-pass shape (mark *all* runs before admitting *any* seed) is
    what makes the wave a barrier: admission decisions depend only on the
    set of runs in the wave, never on the order they executed — so a
    parallel wave admits exactly what the serial one does.

    Each admitted reversal becomes a frontier payload ``(choices,
    sleep_at)``.  The sleep insertions carry, for *every* seedable choice
    point along the forced prefix, the branches already explored (or
    already admitted) from that state — the inherited sleep set of classic
    DPOR.  Without it each seeded subtree would re-explore the orderings
    its left siblings cover, and DPOR would degenerate to worse than plain
    sleep-set DFS.
    """
    for obs in observations:
        if obs is not None:
            book.mark_run(obs)
    admitted: List[Tuple[Tuple[int, ...], SleepAt]] = []
    for obs in observations:
        if obs is None:
            continue
        for seed in find_races(obs):
            done = book._done.setdefault(seed.prefix, {})
            if seed.slot in done:
                continue
            sleep_at: SleepAt = {}
            for position in sorted(obs.choices_at):
                if position > seed.position:
                    break
                if position == seed.position:
                    entries = tuple(sorted(done.items()))
                else:
                    done_q = book.explored_at(tuple(obs.taken[:position]))
                    done_q.pop(obs.taken[position], None)
                    entries = tuple(sorted(done_q.items()))
                if entries:
                    sleep_at[position] = entries
            done[seed.slot] = seed.lock
            admitted.append((seed.prefix + (seed.slot,), sleep_at))
    return admitted
