"""Reusable simulated programs.

These generator factories implement the locking patterns used throughout
the tests and benchmarks: the paper's two-lock example (section 4), dining
philosophers, two-phase locking transactions, and a random
synchronization-intensive workload that mirrors the microbenchmark of
section 7.2.2.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, List, Sequence

from ..core.signature import EXCLUSIVE, SHARED
from .actions import Acquire, Compute, Log, Release, call_site
from .locks import SimLock


def lock_order_program(first: SimLock, second: SimLock, label: str,
                       hold_time: float = 0.001, outside_time: float = 0.0,
                       iterations: int = 1) -> Callable[[], Iterable]:
    """The paper's ``update(x, y)`` routine: lock ``first`` then ``second``.

    ``label`` identifies the call site (the paper's s1/s2 statements), so
    two threads calling this with swapped locks and different labels
    reproduce the section 4 deadlock pattern exactly.
    """

    def program():
        for iteration in range(iterations):
            if outside_time:
                yield Compute(outside_time)
            yield Acquire(first, call_site("lock:3", f"update:{label}", "main:0"))
            yield Compute(hold_time)
            yield Acquire(second, call_site("lock:4", f"update:{label}", "main:0"))
            yield Compute(hold_time)
            yield Release(second)
            yield Release(first)
            yield Log(f"iteration {iteration} done via {label}")

    return program


def philosopher_program(left: SimLock, right: SimLock, seat: int,
                        think_time: float = 0.001, eat_time: float = 0.001,
                        meals: int = 1) -> Callable[[], Iterable]:
    """A dining philosopher picking up ``left`` then ``right``.

    With every philosopher grabbing the left fork first, the classic cyclic
    deadlock can occur; it produces a multi-thread (size > 2) signature.
    """

    def program():
        for _meal in range(meals):
            yield Compute(think_time)
            yield Acquire(left, call_site("pickup_left:11", f"dine:{seat}", "main:0"))
            yield Compute(eat_time / 2)
            yield Acquire(right, call_site("pickup_right:12", f"dine:{seat}", "main:0"))
            yield Compute(eat_time)
            yield Release(right)
            yield Release(left)

    return program


def two_phase_program(locks: Sequence[SimLock], order: Sequence[int], label: str,
                      hold_time: float = 0.0005,
                      outside_time: float = 0.001) -> Callable[[], Iterable]:
    """A two-phase-locking transaction acquiring ``locks`` in ``order``.

    Conflicting orders across threads create multi-lock deadlock cycles.
    """

    def program():
        yield Compute(outside_time)
        taken: List[SimLock] = []
        for position, index in enumerate(order):
            lock = locks[index]
            yield Acquire(lock, call_site(f"acquire:{position}", f"txn:{label}", "main:0"))
            taken.append(lock)
            yield Compute(hold_time)
        for lock in reversed(taken):
            yield Release(lock)

    return program


def sem_pool_program(pool: SimLock, label: str, permits: int = 2,
                     hold_time: float = 0.0) -> Callable[[], Iterable]:
    """A worker draining ``permits`` permits from a shared pool, one by one.

    Two workers each needing two permits from a two-permit
    :class:`~repro.sim.locks.SimSemaphore` reproduce the classic
    permit-exhaustion deadlock: each grabs one permit and blocks forever
    on its second — a wait-for cycle through the pool's *holders* that a
    single-owner resource model cannot even express.
    """

    def program():
        for step in range(permits):
            yield Acquire(pool, call_site(f"take:{step}", f"pool:{label}",
                                          "main:0"))
            if hold_time:
                yield Compute(hold_time)
        for _step in range(permits):
            yield Release(pool)
        yield Log(f"{label} drained and refilled the pool")

    return program


def rwlock_upgrade_program(rwlock: SimLock, label: str,
                           read_time: float = 0.0) -> Callable[[], Iterable]:
    """A reader that upgrades to a write hold while still holding its read.

    Two concurrent upgraders deadlock: each one's write acquisition waits
    for the *other* reader to leave, and neither ever does — the
    writer-starves-reader inversion of the rwlock world.  Release order is
    LIFO (write hold first, then the original read hold).
    """

    def program():
        yield Acquire(rwlock, call_site("read:21", f"cachesync:{label}",
                                        "main:0"), mode=SHARED)
        if read_time:
            yield Compute(read_time)
        yield Acquire(rwlock, call_site("upgrade:22", f"cachesync:{label}",
                                        "main:0"), mode=EXCLUSIVE)
        yield Release(rwlock)  # the write hold
        yield Release(rwlock)  # the original read hold
        yield Log(f"{label} upgraded and published")

    return program


def random_workload_program(locks: Sequence[SimLock], seed: int,
                            iterations: int = 50,
                            delta_in: float = 1e-6,
                            delta_out: float = 1e-3,
                            stack_depth: int = 10,
                            functions: int = 4,
                            nesting: int = 1) -> Callable[[], Iterable]:
    """The section 7.2.2 microbenchmark, simulated.

    Each iteration the thread computes for ``delta_out`` seconds, picks
    ``nesting`` distinct random locks, acquires them while "computing" for
    ``delta_in`` inside the critical section, and releases them.  The call
    stack is a random path through ``functions`` possible callees at every
    one of ``stack_depth`` levels, giving a uniformly distributed selection
    of call stacks, as in the paper.
    """
    rng = random.Random(seed)

    def random_stack() -> List[str]:
        frames = [f"f{rng.randrange(functions)}:{level}"
                  for level in range(stack_depth - 1)]
        return ["lock_wrapper:0"] + frames

    def program():
        for _iteration in range(iterations):
            if delta_out:
                yield Compute(delta_out)
            count = min(nesting, len(locks))
            chosen = rng.sample(range(len(locks)), count)
            taken = []
            for index in chosen:
                lock = locks[index]
                yield Acquire(lock, call_site(*random_stack()))
                taken.append(lock)
                if delta_in:
                    yield Compute(delta_in)
            for lock in reversed(taken):
                yield Release(lock)

    return program
