"""repro — a Python reproduction of Dimmunix (Deadlock Immunity, OSDI 2008).

Deadlock immunity is a property by which programs, once afflicted by a
given deadlock, develop resistance against future occurrences of that and
similar deadlocks.  This package provides:

* :class:`~repro.core.dimmunix.Dimmunix` — the immunity runtime (history,
  avoidance engine, monitor, calibrator),
* :mod:`repro.instrument` — drop-in ``threading`` lock replacements and
  monkey-patching (``repro.immunize()``),
* :mod:`repro.sim` — a deterministic simulator for reproducible deadlock
  and starvation scenarios,
* :mod:`repro.baselines` — gate-lock / ghost-lock / detection-only
  comparators used by the evaluation,
* :mod:`repro.apps`, :mod:`repro.workloads`, :mod:`repro.harness` — the
  miniature target systems, workloads and experiment harness that
  regenerate the paper's tables and figures.

Quickstart::

    import repro

    handle = repro.immunize(history_path="app.history")
    # ... run your threaded program; deadlock patterns encountered once
    # are avoided in all subsequent runs ...
    handle.stop()

``runtime="asyncio"`` immunizes event-loop programs and
``runtime="both"`` immunizes mixed ones, all against one shared engine;
``share=...`` joins a cross-process (or cross-host) signature pool.
"""

from .core import (CallStack, Decision, DetectedCycle, Dimmunix, DimmunixConfig,
                   DimmunixError, EngineStats, EXCLUSIVE, Frame, History,
                   RestartRequired, SHARED, Signature, STRONG_IMMUNITY,
                   WEAK_IMMUNITY)
from .instrument import (AioCondition, AioLock, AioRWLock, AioSemaphore,
                         AsyncioRuntime, DimmunixBoundedSemaphore,
                         DimmunixCondition, DimmunixLock, DimmunixRLock,
                         DimmunixRWLock, DimmunixSemaphore, ImmunityHandle,
                         immunize, immunize_asyncio, install, install_asyncio,
                         patched, patched_asyncio, uninstall,
                         uninstall_asyncio)

__version__ = "0.1.0"

__all__ = [
    "AioCondition",
    "AioLock",
    "AioRWLock",
    "AioSemaphore",
    "AsyncioRuntime",
    "CallStack",
    "Decision",
    "DetectedCycle",
    "Dimmunix",
    "DimmunixBoundedSemaphore",
    "DimmunixCondition",
    "DimmunixConfig",
    "DimmunixError",
    "DimmunixLock",
    "DimmunixRLock",
    "DimmunixRWLock",
    "DimmunixSemaphore",
    "EXCLUSIVE",
    "EngineStats",
    "Frame",
    "History",
    "ImmunityHandle",
    "RestartRequired",
    "SHARED",
    "STRONG_IMMUNITY",
    "Signature",
    "WEAK_IMMUNITY",
    "__version__",
    "immunize",
    "immunize_asyncio",
    "install",
    "install_asyncio",
    "patched",
    "patched_asyncio",
    "uninstall",
    "uninstall_asyncio",
]
