"""Rx-style rollback-and-retry recovery (Qin et al. [18]).

Rx survives failures by rolling the program back to a checkpoint and
re-executing it in a modified environment; for deadlocks, the hope is that
new timing conditions prevent the reoccurrence.  Crucially — and this is
the contrast the paper draws — Rx builds no memory of the deadlock: the
program does not become more resistant over time, and a deterministic
deadlock can defeat it entirely.

In the simulator, a "checkpoint rollback with different timing" is
modelled by rebuilding the scheduler from scratch with a different
scheduling seed and re-running the workload.  :class:`RxRetryRunner`
captures the retry loop and its cost (number of re-executions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..sim.result import SimResult
from ..sim.scheduler import SimScheduler


@dataclass
class RxOutcome:
    """Result of running a workload under the Rx-style retry policy."""

    final: SimResult
    attempts: int
    deadlocks_encountered: int
    results: List[SimResult] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        """True when some retry eventually ran to completion."""
        return self.final.completed


class RxRetryRunner:
    """Re-execute a workload with fresh timing until it completes."""

    def __init__(self, scheduler_factory: Callable[[int], SimScheduler],
                 max_retries: int = 10, base_seed: int = 0):
        """``scheduler_factory(seed)`` must return a ready-to-run scheduler."""
        self.scheduler_factory = scheduler_factory
        self.max_retries = max_retries
        self.base_seed = base_seed

    def run(self) -> RxOutcome:
        """Run the workload, retrying with a new seed after every deadlock."""
        results: List[SimResult] = []
        deadlocks = 0
        result: Optional[SimResult] = None
        for attempt in range(self.max_retries + 1):
            scheduler = self.scheduler_factory(self.base_seed + attempt)
            result = scheduler.run()
            results.append(result)
            if not result.deadlocked:
                break
            deadlocks += 1
        assert result is not None
        return RxOutcome(final=result, attempts=len(results),
                         deadlocks_encountered=deadlocks, results=results)


def rx_retry(scheduler_factory: Callable[[int], SimScheduler],
             max_retries: int = 10, base_seed: int = 0) -> RxOutcome:
    """Convenience wrapper around :class:`RxRetryRunner`."""
    return RxRetryRunner(scheduler_factory, max_retries=max_retries,
                         base_seed=base_seed).run()
