"""Ghost-lock deadlock prevention (Zeng & Martin [23]).

For every deadlock, a "ghost lock" is associated with the *set of locks*
involved; a thread must acquire the ghost before acquiring any member of
the set and keeps it until it no longer holds any member.  Unlike gate
locks, the policy is keyed on lock identities rather than code locations,
so it serializes all concurrent use of those particular locks, regardless
of the code path — the dual coarse-grained design the paper contrasts
Dimmunix with in section 4.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from ..core.callstack import CallStack
from ..core.signature import EXCLUSIVE
from ..sim.backends import SchedulerBackend
from ..sim.result import StallRecord


@dataclass
class GhostLock:
    """A ghost lock covering a set of real lock identifiers."""

    ghost_id: int
    lock_ids: FrozenSet[int]
    owner: Optional[int] = None
    waiters: List[int] = field(default_factory=list)

    def covers(self, lock_id: int) -> bool:
        return lock_id in self.lock_ids


class GhostLockBackend(SchedulerBackend):
    """Serialize access to lock sets that have previously deadlocked."""

    name = "ghost-lock"

    def __init__(self):
        self._ghosts: List[GhostLock] = []
        self._ghost_ids = itertools.count(1)
        #: thread -> set of lock ids it currently holds (covered or not).
        self._held: Dict[int, Set[int]] = {}
        self.denials = 0
        self.deadlocks_learned = 0

    # -- learning -----------------------------------------------------------------------------

    def add_ghost(self, lock_ids) -> GhostLock:
        """Install a ghost lock covering ``lock_ids``."""
        ghost = GhostLock(ghost_id=next(self._ghost_ids),
                          lock_ids=frozenset(lock_ids))
        self._ghosts.append(ghost)
        return ghost

    def on_deadlock(self, stall: StallRecord, details: Dict) -> None:
        involved: Set[int] = set()
        for thread_id, lock_id in stall.waiting.items():
            involved.add(lock_id)
            involved.update(stall.holding.get(thread_id, []))
        if involved:
            self.add_ghost(involved)
            self.deadlocks_learned += 1

    # -- lock protocol --------------------------------------------------------------------------

    def request(self, thread_id: int, lock_id: int, stack: CallStack,
                mode: str = EXCLUSIVE, capacity: int = 1) -> bool:
        needed = [ghost for ghost in self._ghosts if ghost.covers(lock_id)]
        if not needed:
            return True
        for ghost in needed:
            if ghost.owner is not None and ghost.owner != thread_id:
                self.denials += 1
                if thread_id not in ghost.waiters:
                    ghost.waiters.append(thread_id)
                return False
        for ghost in needed:
            ghost.owner = thread_id
            if thread_id in ghost.waiters:
                ghost.waiters.remove(thread_id)
        return True

    def acquired(self, thread_id: int, lock_id: int, stack: CallStack,
                 mode: str = EXCLUSIVE, capacity: int = 1) -> None:
        self._held.setdefault(thread_id, set()).add(lock_id)

    def release(self, thread_id: int, lock_id: int) -> List[int]:
        held = self._held.get(thread_id, set())
        held.discard(lock_id)
        woken: Set[int] = set()
        for ghost in self._ghosts:
            if ghost.owner != thread_id:
                continue
            if not any(ghost.covers(other) for other in held):
                ghost.owner = None
                woken.update(ghost.waiters)
                ghost.waiters.clear()
        return sorted(woken)

    def cancel(self, thread_id: int, lock_id: int) -> None:
        # Release ghosts taken for a request that never completed.
        held = self._held.get(thread_id, set())
        woken: List[int] = []
        for ghost in self._ghosts:
            if ghost.owner != thread_id:
                continue
            if not any(ghost.covers(other) for other in held):
                ghost.owner = None
                woken.extend(ghost.waiters)
                ghost.waiters.clear()

    def fork(self) -> "GhostLockBackend":
        """A fresh backend with the installed ghosts but clean runtime state.

        Ghost locks are keyed on lock *identities*, so a fork only
        protects scenarios that reuse the same lock objects across runs
        (``SimScheduler.register_lock``); scenarios that rebuild their
        locks per run get fresh lock ids the ghosts cannot cover — an
        inherent property of the identity-keyed design, not of the fork.
        """
        fork = GhostLockBackend()
        for ghost in self._ghosts:
            fork.add_ghost(ghost.lock_ids)
        return fork

    # -- reporting ----------------------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "ghosts": len(self._ghosts),
            "ghost_denials": self.denials,
            "deadlocks_learned": self.deadlocks_learned,
        }

    @property
    def ghosts(self) -> List[GhostLock]:
        """The installed ghost locks."""
        return list(self._ghosts)
