"""Detection-only backend.

This is the paper's "instrumented, but all yield decisions ignored"
configuration (section 7.1.1): the full Dimmunix machinery runs — events,
RAG, cycle detection, signature archiving — but no thread is ever parked,
so timing perturbations introduced by the instrumentation can be measured
separately from avoidance itself, and deadlocks still manifest.
"""

from __future__ import annotations

from typing import Optional

from ..core.config import DimmunixConfig
from ..core.history import History
from ..sim.backends import DimmunixBackend
from ..util.clock import VirtualClock


class DetectionOnlyBackend(DimmunixBackend):
    """Dimmunix with avoidance disabled (detection and archiving only)."""

    name = "detection-only"

    def __init__(self, config: Optional[DimmunixConfig] = None,
                 history: Optional[History] = None,
                 clock: Optional[VirtualClock] = None):
        base = config or DimmunixConfig.for_testing()
        super().__init__(config=base.with_overrides(detection_only=True),
                         history=history, clock=clock)
