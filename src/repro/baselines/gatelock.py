"""Gate-lock deadlock healing (Nir-Buchbinder et al. [17]).

Upon observing a deadlock, the code locations involved are wrapped in one
"gate lock": in subsequent executions a thread must own the gate before it
may perform a lock acquisition from any of those locations, which
serializes every execution of the wrapped code — including interleavings
that could never deadlock.  The paper shows this coarse-grained policy
causes more than an order of magnitude more false positives (and ~70%
throughput overhead) compared to Dimmunix on the same workload.

The gate is keyed on the *code region* performing the synchronization: the
caller of the lock operation (one frame above the lock call), which is the
closest stack-based approximation of "the code block wrapped by the gate".
No deeper call-path context and no runtime lock-holder information is
used — exactly the contrast the paper draws in section 4: on the
``update(x, y)`` example the gate serializes every call to ``update``,
even interleavings that can never deadlock.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..core.callstack import CallStack
from ..core.signature import EXCLUSIVE
from ..sim.backends import SchedulerBackend
from ..sim.result import StallRecord


def _site_of(stack: CallStack) -> Optional[str]:
    """The code-region key of a lock operation: its caller frame.

    Falls back to the innermost frame for one-frame stacks.  The gate must
    be owned before *any* lock acquisition performed from that region, so
    taking the caller (rather than the lock call itself) makes the gate
    guard the whole block, as in the original healing approach.
    """
    if len(stack) == 0:
        return None
    frame = stack[1] if len(stack) > 1 else stack[0]
    return frame.encode()


@dataclass
class Gate:
    """One gate lock covering a set of code sites."""

    gate_id: int
    sites: FrozenSet[str]
    owner: Optional[int] = None
    depth: int = 0
    waiters: List[int] = field(default_factory=list)

    def covers(self, site: Optional[str]) -> bool:
        return site is not None and site in self.sites


class GateLockBackend(SchedulerBackend):
    """Serialize code blocks involved in previously seen deadlocks."""

    name = "gate-lock"

    def __init__(self):
        self._gates: List[Gate] = []
        self._gate_ids = itertools.count(1)
        #: (thread, lock) -> gates entered when acquiring that lock.
        self._entries: Dict[Tuple[int, int], List[Gate]] = {}
        #: per-thread count of gate ownerships (for reentrancy across locks).
        self._owned: Dict[int, Dict[int, int]] = {}
        self.denials = 0
        self.gate_acquisitions = 0
        self.deadlocks_learned = 0

    # -- learning ---------------------------------------------------------------------------

    def add_gate(self, sites) -> Gate:
        """Create a gate covering the given encoded call sites."""
        encoded = frozenset(
            site if isinstance(site, str) else _site_of(site) for site in sites)
        encoded = frozenset(site for site in encoded if site is not None)
        gate = Gate(gate_id=next(self._gate_ids), sites=encoded)
        self._gates.append(gate)
        return gate

    def learn_from_signature(self, signature) -> Gate:
        """Build a gate from a Dimmunix signature (used by experiments).

        Only the innermost frame of each stack is used — this is precisely
        what makes the approach coarse grained.
        """
        return self.add_gate([stack for stack in signature.stacks])

    def on_deadlock(self, stall: StallRecord, details: Dict) -> None:
        sites = [stack for stack in details.get("sites", {}).values()]
        if sites:
            self.add_gate(sites)
            self.deadlocks_learned += 1

    # -- lock protocol ------------------------------------------------------------------------

    def request(self, thread_id: int, lock_id: int, stack: CallStack,
                mode: str = EXCLUSIVE, capacity: int = 1) -> bool:
        site = _site_of(stack)
        needed = [gate for gate in self._gates if gate.covers(site)]
        if not needed:
            return True
        for gate in needed:
            if gate.owner is not None and gate.owner != thread_id:
                self.denials += 1
                if thread_id not in gate.waiters:
                    gate.waiters.append(thread_id)
                return False
        # All needed gates are free (or already ours): take them.
        for gate in needed:
            if gate.owner is None:
                gate.owner = thread_id
                self.gate_acquisitions += 1
            gate.depth += 1
            self._owned.setdefault(thread_id, {})
            self._owned[thread_id][gate.gate_id] = \
                self._owned[thread_id].get(gate.gate_id, 0) + 1
            self._entries.setdefault((thread_id, lock_id), []).append(gate)
            if thread_id in gate.waiters:
                gate.waiters.remove(thread_id)
        return True

    def acquired(self, thread_id: int, lock_id: int, stack: CallStack,
                 mode: str = EXCLUSIVE, capacity: int = 1) -> None:
        # Gates were taken at request time; nothing further to record.
        return

    def release(self, thread_id: int, lock_id: int) -> List[int]:
        gates = self._entries.pop((thread_id, lock_id), [])
        woken: Set[int] = set()
        for gate in gates:
            gate.depth -= 1
            owned = self._owned.get(thread_id, {})
            owned[gate.gate_id] = owned.get(gate.gate_id, 1) - 1
            if owned.get(gate.gate_id, 0) <= 0:
                owned.pop(gate.gate_id, None)
            if gate.depth <= 0:
                gate.depth = 0
                gate.owner = None
                woken.update(gate.waiters)
                gate.waiters.clear()
        return sorted(woken)

    def cancel(self, thread_id: int, lock_id: int) -> None:
        # A failed trylock releases any gates taken for it.
        self.release(thread_id, lock_id)

    def fork(self) -> "GateLockBackend":
        """A fresh backend with the learned gates but clean runtime state.

        Gates are keyed on encoded code sites, which are stable across
        runs, so a fork keeps the protection while dropping owners,
        waiters, and per-run counters — what schedule exploration needs
        for per-interleaving isolation.
        """
        fork = GateLockBackend()
        for gate in self._gates:
            fork.add_gate(gate.sites)
        return fork

    # -- reporting ---------------------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "gates": len(self._gates),
            "gate_denials": self.denials,
            "gate_acquisitions": self.gate_acquisitions,
            "deadlocks_learned": self.deadlocks_learned,
        }

    @property
    def gates(self) -> List[Gate]:
        """The gates currently installed."""
        return list(self._gates)
