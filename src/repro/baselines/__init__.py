"""Baseline deadlock-avoidance approaches used in the paper's comparison.

Section 7.3 of the paper compares Dimmunix against the "gate lock"
approach of Nir-Buchbinder et al. [17] (serialize the code blocks involved
in an observed deadlock behind one gate lock) and discusses the "ghost
lock" approach of Zeng & Martin [23] (serialize access to the *lock sets*
that could deadlock).  Both are implemented here as scheduler backends so
the very same workloads can be replayed under every policy.  A
detection-only backend (deadlocks are recorded but never avoided) and an
Rx-style rollback/retry runner complete the comparison set.
"""

from .gatelock import GateLockBackend
from .ghostlock import GhostLockBackend
from .detection import DetectionOnlyBackend
from .rx import RxRetryRunner, rx_retry

__all__ = [
    "DetectionOnlyBackend",
    "GateLockBackend",
    "GhostLockBackend",
    "RxRetryRunner",
    "rx_retry",
]
