"""A miniature *asyncio* message broker.

The event-loop twin of :mod:`repro.apps.minibroker`: the same two Apache
ActiveMQ deadlock shapes of Table 1, but the contenders are asyncio
tasks and the locks are :class:`~repro.instrument.aio.AioLock`
instances:

* the **bug #336 analogue** — registering a message listener locks the
  *session* then the *dispatcher*, while active dispatch locks the
  *dispatcher* then each *session*;
* the **bug #575 analogue** — ``Queue.drop_event()`` locks the queue
  then the subscription, while ``Subscription.add()`` locks the
  subscription then the queue.

In a threaded broker these inversions hang two threads; on an event
loop they hang two *tasks* — and, because every other coroutine awaits
the same loop, a deadlocked pair quietly wedges whatever shares locks
with it.  The broker otherwise behaves like a small but real async
pub/sub system (enqueue, dispatch, acknowledge), so throughput
workloads can run against it (see
:func:`repro.harness.appworkloads.run_aiobroker_workload` and
``benchmarks/bench_asyncio_overhead.py``).
"""

from __future__ import annotations

import asyncio
import itertools
from collections import deque
from contextlib import asynccontextmanager
from typing import Awaitable, Callable, Deque, Dict, List, Optional

from ..instrument.aio import AioLock, AsyncioRuntime, get_default_aio_runtime
from .base import AppLockTimeout

#: Type of the optional async interleaving hook threaded through methods.
AsyncPauseHook = Optional[Callable[[], Awaitable[None]]]


class AioApp:
    """Base class for asyncio miniature apps: aio locks bound to one runtime.

    The asyncio analogue of :class:`repro.apps.base.MiniApp`: nested
    acquisitions are bounded by ``acquire_timeout`` and surface
    :class:`~repro.apps.base.AppLockTimeout` on expiry, standing in for
    the external restart the paper relies on for recovery.
    """

    #: Bound on nested lock acquisitions inside app methods, in seconds.
    acquire_timeout: float = 2.0

    def __init__(self, runtime: Optional[AsyncioRuntime] = None,
                 acquire_timeout: Optional[float] = None):
        self.runtime = runtime if runtime is not None else get_default_aio_runtime()
        if acquire_timeout is not None:
            self.acquire_timeout = acquire_timeout

    def make_lock(self, name: str) -> AioLock:
        """An aio mutex tied to this app's runtime."""
        return AioLock(runtime=self.runtime, name=name)

    async def acquire_nested(self, lock: AioLock, operation: str) -> None:
        """Acquire ``lock`` with the app's timeout; raise on expiry."""
        if not await lock.acquire(timeout=self.acquire_timeout):
            raise AppLockTimeout(lock.name, operation)

    @asynccontextmanager
    async def holding(self, lock: AioLock, operation: str,
                      pause: AsyncPauseHook = None):
        """Hold ``lock`` for the duration of the block.

        ``pause`` (if given) runs right after the acquisition — exploits
        use it to force the interleaving that exposes a bug.
        """
        await self.acquire_nested(lock, operation)
        try:
            if pause is not None:
                await pause()
            yield
        finally:
            lock.release()


def aio_interleave_pause(my_event: asyncio.Event, other_event: asyncio.Event,
                         timeout: float = 0.5) -> Callable[[], Awaitable[None]]:
    """Build the standard async exploit pause hook.

    The returned coroutine function signals that the calling task reached
    its first lock and then waits (bounded) for the conflicting task to
    reach its own — the event-loop version of
    :func:`repro.apps.base.interleave_pause`.
    """

    async def pause() -> None:
        my_event.set()
        try:
            await asyncio.wait_for(other_event.wait(), timeout)
        except asyncio.TimeoutError:
            pass

    return pause


class AioSubscription:
    """A consumer-side prefetch buffer (asyncio twin of PrefetchSubscription)."""

    _ids = itertools.count(1)

    def __init__(self, broker: "AioBroker", consumer: str):
        self.subscription_id = next(AioSubscription._ids)
        self.consumer = consumer
        self.broker = broker
        self.lock = broker.make_lock(f"aio-subscription-{self.subscription_id}")
        self.prefetched: Deque[dict] = deque()
        self.delivered: List[dict] = []

    async def add(self, queue: "AioQueue", message: dict,
                  _pause: AsyncPauseHook = None) -> int:
        """Add a message: locks the subscription, then the queue (bug #575)."""
        async with self.broker.holding(self.lock, "AioSubscription.add",
                                       pause=_pause):
            self.prefetched.append(message)
            async with self.broker.holding(queue.lock, "AioSubscription.add"):
                queue.in_flight += 1
            return len(self.prefetched)

    async def remove(self, queue: "AioQueue",
                     _pause: AsyncPauseHook = None) -> Optional[dict]:
        """Acknowledge a message: subscription lock, then queue lock."""
        async with self.broker.holding(self.lock, "AioSubscription.remove",
                                       pause=_pause):
            if not self.prefetched:
                return None
            message = self.prefetched.popleft()
            self.delivered.append(message)
            async with self.broker.holding(queue.lock, "AioSubscription.remove"):
                queue.in_flight = max(0, queue.in_flight - 1)
                queue.dequeued += 1
            return message


class AioQueue:
    """A broker-side message queue."""

    def __init__(self, broker: "AioBroker", name: str):
        self.name = name
        self.broker = broker
        self.lock = broker.make_lock(f"aio-queue-{name}")
        self.messages: Deque[dict] = deque()
        self.subscriptions: List[AioSubscription] = []
        self.in_flight = 0
        self.dequeued = 0

    async def enqueue(self, message: dict) -> int:
        """Producer path: queue lock only (not deadlock prone)."""
        async with self.broker.holding(self.lock, "AioQueue.enqueue"):
            self.messages.append(message)
            return len(self.messages)

    async def drop_event(self, subscription: AioSubscription,
                         _pause: AsyncPauseHook = None) -> int:
        """Handle a consumer drop: locks the queue, then the subscription
        (bug #575, opposite order to :meth:`AioSubscription.add`)."""
        async with self.broker.holding(self.lock, "AioQueue.drop_event",
                                       pause=_pause):
            async with self.broker.holding(subscription.lock,
                                           "AioQueue.drop_event"):
                recovered = len(subscription.prefetched)
                while subscription.prefetched:
                    self.messages.appendleft(subscription.prefetched.pop())
                if subscription in self.subscriptions:
                    self.subscriptions.remove(subscription)
                return recovered

    async def dispatch_one(self, _pause: AsyncPauseHook = None) -> bool:
        """Move one message into a subscription's prefetch buffer."""
        async with self.broker.holding(self.lock, "AioQueue.dispatch_one",
                                       pause=_pause):
            if not self.messages or not self.subscriptions:
                return False
            message = self.messages.popleft()
            target = self.subscriptions[0]
            async with self.broker.holding(target.lock,
                                           "AioQueue.dispatch_one"):
                target.prefetched.append(message)
                self.in_flight += 1
            return True


class AioSession:
    """A client session; listener registration races with dispatch (bug #336)."""

    _ids = itertools.count(1)

    def __init__(self, broker: "AioBroker"):
        self.session_id = next(AioSession._ids)
        self.broker = broker
        self.lock = broker.make_lock(f"aio-session-{self.session_id}")
        self.consumers: List[str] = []

    async def create_consumer(self, name: str,
                              _pause: AsyncPauseHook = None) -> str:
        """Register a listener: locks the session, then the dispatcher."""
        async with self.broker.holding(self.lock, "AioSession.create_consumer",
                                       pause=_pause):
            self.consumers.append(name)
            async with self.broker.holding(self.broker.dispatcher_lock,
                                           "AioSession.create_consumer"):
                self.broker.dispatch_targets.append((self, name))
            return name


class AioBroker(AioApp):
    """The async broker: queues, sessions, and the dispatcher task's lock."""

    def __init__(self, runtime: Optional[AsyncioRuntime] = None,
                 acquire_timeout: Optional[float] = None):
        super().__init__(runtime=runtime, acquire_timeout=acquire_timeout)
        self.queues: Dict[str, AioQueue] = {}
        self.dispatcher_lock = self.make_lock("aio-broker-dispatcher")
        self.dispatch_targets: List[tuple] = []
        self._registry_lock = self.make_lock("aio-broker-registry")

    # -- management ---------------------------------------------------------------------------

    async def create_queue(self, name: str) -> AioQueue:
        """Create (or return) the queue ``name``."""
        async with self.holding(self._registry_lock, "AioBroker.create_queue"):
            queue = self.queues.get(name)
            if queue is None:
                queue = AioQueue(self, name)
                self.queues[name] = queue
            return queue

    def create_session(self) -> AioSession:
        """Open a new client session."""
        return AioSession(self)

    async def subscribe(self, queue: AioQueue, consumer: str) -> AioSubscription:
        """Attach a consumer to a queue."""
        subscription = AioSubscription(self, consumer)
        async with self.holding(queue.lock, "AioBroker.subscribe"):
            queue.subscriptions.append(subscription)
        return subscription

    # -- the bug #336 dispatch path ----------------------------------------------------------------

    async def dispatch_to_sessions(self, message: dict,
                                   _pause: AsyncPauseHook = None) -> int:
        """Active dispatch: locks the dispatcher, then each target session."""
        async with self.holding(self.dispatcher_lock,
                                "AioBroker.dispatch_to_sessions",
                                pause=_pause):
            delivered = 0
            for session, _consumer in list(self.dispatch_targets):
                async with self.holding(session.lock,
                                        "AioBroker.dispatch_to_sessions"):
                    delivered += 1
            return delivered

    # -- workload helpers (used by the asyncio overhead benchmark) ----------------------------------

    async def produce_consume_cycle(self, queue_name: str,
                                    messages: int = 10) -> int:
        """A correct end-to-end produce/dispatch/ack cycle; returns acks."""
        queue = await self.create_queue(queue_name)
        if not queue.subscriptions:
            await self.subscribe(queue, f"consumer-{queue_name}")
        for index in range(messages):
            await queue.enqueue({"id": index})
        while await queue.dispatch_one():
            pass
        acks = 0
        for subscription in list(queue.subscriptions):
            while await subscription.remove(queue) is not None:
                acks += 1
        return acks
