"""A miniature embedded database.

Reproduces the locking structure of two reported bugs:

* **MySQL 6.0.4 bug #37080** — ``INSERT`` and ``TRUNCATE`` running in two
  different threads deadlock because the insert path locks the table
  before the transaction log while the truncate path locks the log before
  the table.  :meth:`MiniDB.insert` and :meth:`MiniDB.truncate` reproduce
  that ordering mistake.
* **SQLite 3.3.0 bug #1672** — a deadlock inside SQLite's custom recursive
  lock implementation, which builds a recursive mutex out of a guard mutex
  and an inner mutex and acquires them in an inconsistent order.
  :class:`CustomRecursiveLock` reproduces that implementation, bug
  included.

The rest of the class is an ordinary (correct) key/value table store so
that realistic, non-deadlocking workloads can also be run against it.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from .base import AppLockTimeout, MiniApp, PauseHook


class Table:
    """One table: a named list of rows protected by its own lock."""

    def __init__(self, app: "MiniDB", name: str):
        self.name = name
        self.rows: List[dict] = []
        self.lock = app.make_rlock(f"table-{name}")


class MiniDB(MiniApp):
    """A tiny multi-table store with a shared transaction log."""

    def __init__(self, runtime=None, acquire_timeout: Optional[float] = None):
        super().__init__(runtime=runtime, acquire_timeout=acquire_timeout)
        self._tables: Dict[str, Table] = {}
        self._catalog_lock = self.make_rlock("db-catalog")
        self._log_lock = self.make_rlock("db-txlog")
        self._log: List[str] = []

    # -- schema management ------------------------------------------------------------

    def create_table(self, name: str) -> Table:
        """Create (or return the existing) table ``name``."""
        with self.holding(self._catalog_lock, "create_table"):
            table = self._tables.get(name)
            if table is None:
                table = Table(self, name)
                self._tables[name] = table
            return table

    def table(self, name: str) -> Table:
        """Look up an existing table."""
        with self.holding(self._catalog_lock, "table"):
            return self._tables[name]

    def tables(self) -> List[str]:
        """Names of all tables."""
        with self.holding(self._catalog_lock, "tables"):
            return sorted(self._tables)

    # -- the MySQL #37080 pattern --------------------------------------------------------

    def insert(self, table_name: str, row: dict, _pause: PauseHook = None) -> int:
        """Insert ``row``; locks the *table first*, then the transaction log.

        Returns the new row count of the table.
        """
        table = self.table(table_name)
        with self.holding(table.lock, "insert", pause=_pause):
            table.rows.append(dict(row))
            with self.holding(self._log_lock, "insert"):
                self._log.append(f"INSERT {table_name} {len(table.rows)}")
            return len(table.rows)

    def truncate(self, table_name: str, _pause: PauseHook = None) -> int:
        """Remove all rows; locks the *transaction log first*, then the table.

        This is the ordering mistake of bug #37080: run concurrently with
        :meth:`insert` on the same table, the two threads deadlock.
        Returns the number of rows removed.
        """
        table = self.table(table_name)
        with self.holding(self._log_lock, "truncate", pause=_pause):
            self._log.append(f"TRUNCATE {table_name}")
            with self.holding(table.lock, "truncate"):
                removed = len(table.rows)
                table.rows.clear()
                return removed

    # -- ordinary (correct) operations ------------------------------------------------------

    def select(self, table_name: str, predicate=None) -> List[dict]:
        """Read rows, optionally filtered by ``predicate``."""
        table = self.table(table_name)
        with self.holding(table.lock, "select"):
            if predicate is None:
                return [dict(row) for row in table.rows]
            return [dict(row) for row in table.rows if predicate(row)]

    def row_count(self, table_name: str) -> int:
        """Number of rows currently in ``table_name``."""
        table = self.table(table_name)
        with self.holding(table.lock, "row_count"):
            return len(table.rows)

    def log_entries(self) -> List[str]:
        """A copy of the transaction log."""
        with self.holding(self._log_lock, "log_entries"):
            return list(self._log)


class CustomRecursiveLock:
    """SQLite 3.3.0's hand-rolled recursive lock, bug #1672 included.

    The implementation layers a *guard* mutex (protecting the owner/count
    bookkeeping) over an *inner* mutex (the actual exclusion).  The bug:
    ``acquire`` takes the inner mutex while still holding the guard, while
    ``release`` takes the guard while still holding the inner mutex — an
    inverted nesting that deadlocks when an acquiring thread races a
    releasing one.
    """

    def __init__(self, app: MiniApp, name: str = "sqlite-recursive",
                 acquire_timeout: float = 2.0):
        self._app = app
        self._guard = app.make_lock(f"{name}-guard")
        self._inner = app.make_lock(f"{name}-inner")
        self._owner: Optional[int] = None
        self._count = 0
        self._timeout = acquire_timeout
        self.name = name

    def acquire(self, _pause: PauseHook = None) -> None:
        """Acquire the recursive lock (guard first, inner second — buggy order)."""
        me = threading.get_ident()
        if not self._guard.acquire(timeout=self._timeout):
            raise AppLockTimeout(self._guard.name, "recursive-acquire")
        try:
            if self._owner == me:
                self._count += 1
                return
            if _pause is not None:
                _pause()
            # BUG (faithful to SQLite #1672): blocking on the inner mutex
            # while still holding the guard.
            if not self._inner.acquire(timeout=self._timeout):
                raise AppLockTimeout(self._inner.name, "recursive-acquire")
            self._owner = me
            self._count = 1
        finally:
            self._guard.release()

    def release(self, _pause: PauseHook = None) -> None:
        """Release the recursive lock (inner still held while taking the guard)."""
        me = threading.get_ident()
        if self._owner != me:
            raise RuntimeError(f"{self.name} released by non-owner")
        if _pause is not None:
            _pause()
        if not self._guard.acquire(timeout=self._timeout):
            raise AppLockTimeout(self._guard.name, "recursive-release")
        try:
            self._count -= 1
            if self._count == 0:
                self._owner = None
                self._inner.release()
        finally:
            self._guard.release()

    @property
    def held(self) -> bool:
        """True when some thread currently owns the recursive lock."""
        return self._owner is not None
