"""A miniature network-game library (HawkNL analogue).

HawkNL 1.6b3 deadlocks when ``nlShutdown()`` is called concurrently with
``nlClose()``: shutdown takes the library-wide lock and then each socket's
lock while tearing sockets down, whereas closing a single socket takes the
socket's lock first and then the library lock to unregister it.  The paper
reports 10 yields per trial for this bug because the exploit closes
several sockets while a shutdown is in flight — the same pattern repeats
once per socket.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from .base import MiniApp, PauseHook


class NetSocket:
    """One open socket."""

    _ids = itertools.count(1)

    def __init__(self, library: "NetLibrary", group: str = "default"):
        self.socket_id = next(NetSocket._ids)
        self.group = group
        self.library = library
        self.lock = library.make_rlock(f"socket-{self.socket_id}")
        self.open = True
        self.sent: List[bytes] = []


class NetLibrary(MiniApp):
    """The library: global state lock plus per-socket locks."""

    def __init__(self, runtime=None, acquire_timeout: Optional[float] = None):
        super().__init__(runtime=runtime, acquire_timeout=acquire_timeout)
        self.global_lock = self.make_rlock("netlib-global")
        self.sockets: Dict[int, NetSocket] = {}
        self.initialized = True

    # -- normal operation ---------------------------------------------------------------------

    def nl_open(self, group: str = "default") -> NetSocket:
        """Open a socket and register it (global lock only)."""
        with self.holding(self.global_lock, "nl_open"):
            socket = NetSocket(self, group=group)
            self.sockets[socket.socket_id] = socket
            return socket

    def nl_write(self, socket: NetSocket, payload: bytes) -> int:
        """Send data on an open socket (socket lock only)."""
        with self.holding(socket.lock, "nl_write"):
            if not socket.open:
                return 0
            socket.sent.append(payload)
            return len(payload)

    # -- the deadlock-prone pair ---------------------------------------------------------------

    def nl_close(self, socket: NetSocket, _pause: PauseHook = None) -> bool:
        """Close one socket: locks the socket, then the library to unregister it."""
        with self.holding(socket.lock, "nl_close", pause=_pause):
            socket.open = False
            with self.holding(self.global_lock, "nl_close"):
                self.sockets.pop(socket.socket_id, None)
                return True

    def nl_shutdown(self, _pause: PauseHook = None) -> int:
        """Shut the library down: locks the library, then every socket."""
        with self.holding(self.global_lock, "nl_shutdown", pause=_pause):
            closed = 0
            for socket in list(self.sockets.values()):
                with self.holding(socket.lock, "nl_shutdown"):
                    socket.open = False
                    closed += 1
            self.sockets.clear()
            self.initialized = False
            return closed
