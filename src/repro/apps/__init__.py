"""Miniature target applications.

The paper evaluates Dimmunix on MySQL, SQLite, HawkNL, the MySQL JDBC
driver, Limewire, ActiveMQ, JBoss, and the Java JDK.  Those systems are
not reproducible here, but Dimmunix only ever observes their lock/unlock
call flows — so each module in this package implements a small,
self-contained application whose locking structure reproduces the
reported bug exactly (same lock ordering mistake, same method pair, and
therefore the same deadlock cycle and signature shape).

Every threaded application accepts an
:class:`~repro.instrument.runtime.InstrumentationRuntime` so the same
code can run uninstrumented, detection-only, or fully immune; the
asyncio applications (:mod:`repro.apps.aiobroker`) accept an
:class:`~repro.instrument.aio.AsyncioRuntime` the same way.
"""

from .base import AppLockTimeout, MiniApp, interleave_pause
from .aiobroker import (AioApp, AioBroker, AioQueue, AioSession,
                        AioSubscription, aio_interleave_pause)
from .minidb import CustomRecursiveLock, MiniDB
from .connpool import Connection, PreparedStatement, Statement
from .minibroker import Broker, PrefetchSubscription, Queue, Session
from .collections_sync import (BeanContext, CharArrayWriter, SyncHashtable,
                               SyncPrintWriter, SyncStringBuffer, SyncVector)
from .netlib import NetLibrary, NetSocket
from .taskqueue import Task, TaskQueue

__all__ = [
    "AioApp",
    "AioBroker",
    "AioQueue",
    "AioSession",
    "AioSubscription",
    "AppLockTimeout",
    "BeanContext",
    "Broker",
    "CharArrayWriter",
    "Connection",
    "CustomRecursiveLock",
    "MiniApp",
    "MiniDB",
    "NetLibrary",
    "NetSocket",
    "PrefetchSubscription",
    "PreparedStatement",
    "Queue",
    "Session",
    "Statement",
    "SyncHashtable",
    "SyncPrintWriter",
    "SyncStringBuffer",
    "SyncVector",
    "Task",
    "TaskQueue",
    "aio_interleave_pause",
    "interleave_pause",
]
