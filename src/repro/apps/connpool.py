"""A miniature JDBC-style connection/statement layer.

Reproduces the four MySQL Connector/J (JDBC driver) deadlocks listed in
Table 1 of the paper.  In the real driver both ``Connection`` and
``Statement`` objects are synchronized; some statement methods lock the
statement and then call into the connection (locking it too), while some
connection methods lock the connection and then iterate over its open
statements (locking them) — two opposite nesting orders.

* **bug #2147**  — ``PreparedStatement.getWarnings()`` vs ``Connection.close()``
* **bug #14972** — ``Connection.prepareStatement()`` vs ``Statement.close()``
* **bug #31136** — ``PreparedStatement.executeQuery()`` vs ``Connection.close()``
* **bug #17709** — ``Statement.executeQuery()`` vs ``Connection.prepareStatement()``

Each bug corresponds to a distinct *pair of call sites*, so each produces
its own Dimmunix signature even though the underlying locks are the same
two objects.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from .base import MiniApp, PauseHook


class Statement:
    """A plain (non-prepared) statement bound to a connection."""

    _ids = itertools.count(1)

    def __init__(self, connection: "Connection"):
        self.statement_id = next(Statement._ids)
        self.connection = connection
        self.lock = connection.app.make_rlock(f"statement-{self.statement_id}")
        self.closed = False
        self.warnings: List[str] = []

    # -- statement-first, connection-second methods ------------------------------------------

    def execute_query(self, sql: str, _pause: PauseHook = None) -> List[dict]:
        """Run a query: locks the statement, then the connection (bugs #31136/#17709)."""
        app = self.connection.app
        with app.holding(self.lock, "Statement.execute_query", pause=_pause):
            with app.holding(self.connection.lock, "Statement.execute_query"):
                return self.connection._run_query(sql)

    def get_warnings(self, _pause: PauseHook = None) -> List[str]:
        """Fetch warnings: locks the statement, then the connection (bug #2147)."""
        app = self.connection.app
        with app.holding(self.lock, "Statement.get_warnings", pause=_pause):
            with app.holding(self.connection.lock, "Statement.get_warnings"):
                return list(self.warnings) + self.connection._driver_warnings()

    def close(self, _pause: PauseHook = None) -> None:
        """Close the statement: locks the statement, then the connection (bug #14972)."""
        app = self.connection.app
        with app.holding(self.lock, "Statement.close", pause=_pause):
            with app.holding(self.connection.lock, "Statement.close"):
                self.closed = True
                self.connection._forget_statement(self)


class PreparedStatement(Statement):
    """A prepared statement: same locking discipline, distinct call sites."""

    def __init__(self, connection: "Connection", sql: str):
        super().__init__(connection)
        self.sql = sql
        self.parameters: Dict[int, object] = {}

    def set_parameter(self, index: int, value: object) -> None:
        """Bind a query parameter (statement lock only)."""
        with self.connection.app.holding(self.lock, "PreparedStatement.set_parameter"):
            self.parameters[index] = value

    def execute_query(self, sql: Optional[str] = None,
                      _pause: PauseHook = None) -> List[dict]:
        """Run the prepared query (statement lock, then connection lock)."""
        return super().execute_query(sql if sql is not None else self.sql,
                                     _pause=_pause)


class Connection(MiniApp):
    """A database connection owning a set of open statements."""

    _ids = itertools.count(1)

    def __init__(self, runtime=None, acquire_timeout: Optional[float] = None):
        super().__init__(runtime=runtime, acquire_timeout=acquire_timeout)
        self.connection_id = next(Connection._ids)
        self.lock = self.make_rlock(f"connection-{self.connection_id}")
        self.statements: List[Statement] = []
        self.closed = False
        self._data: Dict[str, List[dict]] = {"t": [{"id": 1}, {"id": 2}]}

    # The app object for statements is the connection itself.
    @property
    def app(self) -> "Connection":
        return self

    # -- connection-first, statement-second methods -----------------------------------------------

    def prepare_statement(self, sql: str, _pause: PauseHook = None) -> PreparedStatement:
        """Create a prepared statement: locks the connection, then the new
        statement and the already-open statements (bugs #14972/#17709)."""
        with self.holding(self.lock, "Connection.prepare_statement", pause=_pause):
            statement = PreparedStatement(self, sql)
            # The driver registers the statement while still holding the
            # connection monitor, locking each open statement to update its
            # bookkeeping — this is the connection->statement nesting.
            for existing in list(self.statements):
                with self.holding(existing.lock, "Connection.prepare_statement"):
                    existing.warnings = existing.warnings[-8:]
            self.statements.append(statement)
            return statement

    def create_statement(self) -> Statement:
        """Create a plain statement (connection lock only; not deadlock prone)."""
        with self.holding(self.lock, "Connection.create_statement"):
            statement = Statement(self)
            self.statements.append(statement)
            return statement

    def close(self, _pause: PauseHook = None) -> None:
        """Close the connection: locks the connection, then every statement
        (bugs #2147/#31136)."""
        with self.holding(self.lock, "Connection.close", pause=_pause):
            for statement in list(self.statements):
                with self.holding(statement.lock, "Connection.close"):
                    statement.closed = True
            self.statements.clear()
            self.closed = True

    # -- internals used by statements (caller already holds the connection lock) -------------------

    def _run_query(self, sql: str) -> List[dict]:
        table = sql.split()[-1] if sql else "t"
        return [dict(row) for row in self._data.get(table, self._data["t"])]

    def _driver_warnings(self) -> List[str]:
        return ["connection warning"] if self.closed else []

    def _forget_statement(self, statement: Statement) -> None:
        if statement in self.statements:
            self.statements.remove(statement)
