"""Shared plumbing for the miniature applications.

Every application method that participates in a known deadlock follows the
same shape: acquire a first lock, optionally run an *interleave pause*
(used by the deterministic exploits to make sure the conflicting thread
has reached its own first lock), then acquire a second lock with a bounded
timeout.  A timeout means the thread was stuck in a deadlock long enough
for the monitor to have detected it; the application surfaces this as
:class:`AppLockTimeout`, which the exploit harness interprets as "this
trial deadlocked" (the stand-in for the external restart the paper relies
on for recovery).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Optional

from ..core.errors import DimmunixError
from ..instrument.locks import DimmunixLock, DimmunixRLock
from ..instrument.runtime import InstrumentationRuntime, get_default_dimmunix

#: Type of the optional interleaving hook threaded through app methods.
PauseHook = Optional[Callable[[], None]]


class AppLockTimeout(DimmunixError):
    """A bounded lock acquisition inside an application timed out.

    In the real systems the paper studies, this situation is a deadlock the
    user recovers from by restarting the program; the miniature apps raise
    instead so the calling thread can unwind, release its locks, and let
    the trial finish deterministically.
    """

    def __init__(self, lock_name: str, operation: str):
        super().__init__(f"timed out acquiring {lock_name} during {operation}")
        self.lock_name = lock_name
        self.operation = operation


class MiniApp:
    """Base class: lock factories bound to one instrumentation runtime."""

    #: Bound on nested lock acquisitions inside app methods, in seconds.
    acquire_timeout: float = 2.0

    def __init__(self, runtime: Optional[InstrumentationRuntime] = None,
                 acquire_timeout: Optional[float] = None):
        self.runtime = runtime if runtime is not None else get_default_dimmunix()
        if acquire_timeout is not None:
            self.acquire_timeout = acquire_timeout

    # -- lock construction -----------------------------------------------------------

    def make_lock(self, name: str) -> DimmunixLock:
        """A non-reentrant Dimmunix lock tied to this app's runtime."""
        return DimmunixLock(runtime=self.runtime, name=name)

    def make_rlock(self, name: str) -> DimmunixRLock:
        """A reentrant Dimmunix lock tied to this app's runtime."""
        return DimmunixRLock(runtime=self.runtime, name=name)

    # -- acquisition helpers ----------------------------------------------------------

    def acquire_nested(self, lock: DimmunixLock, operation: str) -> None:
        """Acquire ``lock`` with the app's timeout; raise on expiry."""
        if not lock.acquire(timeout=self.acquire_timeout):
            raise AppLockTimeout(lock.name, operation)

    @contextmanager
    def holding(self, lock: DimmunixLock, operation: str,
                pause: PauseHook = None):
        """Hold ``lock`` for the duration of the block.

        ``pause`` (if given) runs right after the acquisition — exploits use
        it to force the interleaving that exposes a bug.
        """
        self.acquire_nested(lock, operation)
        try:
            if pause is not None:
                pause()
            yield
        finally:
            lock.release()


def interleave_pause(my_event: threading.Event, other_event: threading.Event,
                     timeout: float = 0.5) -> Callable[[], None]:
    """Build the standard exploit pause hook.

    The returned callable signals that the calling thread reached its first
    lock and then waits (bounded) for the conflicting thread to reach its
    own.  Without avoidance both threads proceed into the deadlock; with
    avoidance one of them is parked before signalling, the other times out
    and completes — exactly the behaviour the paper's timing-loop exploits
    produce.
    """

    def pause() -> None:
        my_event.set()
        other_event.wait(timeout)

    return pause
