"""A miniature background task queue (Limewire / HsqlDB analogue).

Limewire 4.17.9 bug #1449 is a deadlock between HsqlDB's ``TaskQueue``
cancel path and its ``shutdown()``: cancelling a task locks the task and
then the queue (to remove the task from the schedule), while shutdown
locks the queue and then each task (to interrupt it).  The paper reports
two deadlock patterns of depth 10 for this bug — the second pattern comes
from the periodic *run* path, which also nests task-then-queue when a
completed task unschedules itself.

The queue otherwise works: tasks can be scheduled, run, and complete.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

from .base import MiniApp, PauseHook


class Task:
    """One scheduled task."""

    _ids = itertools.count(1)

    def __init__(self, queue: "TaskQueue", action: Optional[Callable[[], None]] = None,
                 periodic: bool = False):
        self.task_id = next(Task._ids)
        self.queue = queue
        self.action = action
        self.periodic = periodic
        self.lock = queue.make_rlock(f"task-{self.task_id}")
        self.cancelled = False
        self.runs = 0

    def cancel(self, _pause: PauseHook = None) -> bool:
        """Cancel the task: locks the task, then the queue (pattern 1)."""
        with self.queue.holding(self.lock, "Task.cancel", pause=_pause):
            self.cancelled = True
            with self.queue.holding(self.queue.lock, "Task.cancel"):
                return self.queue._unschedule(self)

    def run_once(self, _pause: PauseHook = None) -> bool:
        """Execute the task; a non-periodic task unschedules itself afterwards
        while still holding its own lock (pattern 2)."""
        with self.queue.holding(self.lock, "Task.run_once", pause=_pause):
            if self.cancelled:
                return False
            if self.action is not None:
                self.action()
            self.runs += 1
            if not self.periodic:
                with self.queue.holding(self.queue.lock, "Task.run_once"):
                    self.queue._unschedule(self)
            return True


class TaskQueue(MiniApp):
    """The scheduler: a queue lock plus per-task locks."""

    def __init__(self, runtime=None, acquire_timeout: Optional[float] = None):
        super().__init__(runtime=runtime, acquire_timeout=acquire_timeout)
        self.lock = self.make_rlock("taskqueue")
        self.tasks: Dict[int, Task] = {}
        self.shut_down = False

    # -- scheduling -----------------------------------------------------------------------

    def schedule(self, action: Optional[Callable[[], None]] = None,
                 periodic: bool = False) -> Task:
        """Create and register a task (queue lock only)."""
        task = Task(self, action=action, periodic=periodic)
        with self.holding(self.lock, "TaskQueue.schedule"):
            if self.shut_down:
                raise RuntimeError("task queue already shut down")
            self.tasks[task.task_id] = task
        return task

    def pending(self) -> List[Task]:
        """Tasks still scheduled."""
        with self.holding(self.lock, "TaskQueue.pending"):
            return list(self.tasks.values())

    def _unschedule(self, task: Task) -> bool:
        # Caller must hold the queue lock.
        return self.tasks.pop(task.task_id, None) is not None

    # -- the deadlock-prone shutdown -----------------------------------------------------------

    def shutdown(self, _pause: PauseHook = None) -> int:
        """Stop the queue: locks the queue, then every task to interrupt it —
        the opposite nesting of :meth:`Task.cancel` / :meth:`Task.run_once`."""
        with self.holding(self.lock, "TaskQueue.shutdown", pause=_pause):
            stopped = 0
            for task in list(self.tasks.values()):
                with self.holding(task.lock, "TaskQueue.shutdown"):
                    task.cancelled = True
                    stopped += 1
            self.tasks.clear()
            self.shut_down = True
            return stopped
