"""Synchronized collection classes — the Java JDK "invitations to deadlock".

Table 2 of the paper lists deadlocks that are reachable through perfectly
legal use of synchronized JDK classes: each instance locks itself and then
the other instance involved in the operation, so two threads operating on
the same pair of objects in opposite roles deadlock inside the library.

The classes here reproduce those locking structures:

* :class:`SyncVector` — ``v1.add_all(v2)`` vs ``v2.add_all(v1)``
* :class:`SyncHashtable` — ``h1.equals(h2)`` vs ``h2.equals(h1)`` when each
  table contains the other
* :class:`SyncStringBuffer` — ``s1.append(s2)`` vs ``s2.append(s1)``
* :class:`SyncPrintWriter` / :class:`CharArrayWriter` — ``w.write(...)``
  concurrently with ``CharArrayWriter.write_to(w)``
* :class:`BeanContext` — ``property_change()`` vs ``remove()``
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional

from .base import MiniApp, PauseHook


class _SyncBase:
    """Common plumbing: every instance owns a reentrant monitor lock."""

    _ids = itertools.count(1)

    def __init__(self, app: MiniApp, kind: str):
        self._app = app
        self._instance_id = next(_SyncBase._ids)
        self.lock = app.make_rlock(f"{kind}-{self._instance_id}")


class SyncVector(_SyncBase):
    """A synchronized growable array (``java.util.Vector``)."""

    def __init__(self, app: MiniApp, items: Optional[Iterable] = None):
        super().__init__(app, "vector")
        self._items: List = list(items or [])

    def add(self, item) -> int:
        """Append one element (self lock only)."""
        with self._app.holding(self.lock, "Vector.add"):
            self._items.append(item)
            return len(self._items)

    def size(self) -> int:
        """Number of elements."""
        with self._app.holding(self.lock, "Vector.size"):
            return len(self._items)

    def items(self) -> List:
        """A snapshot copy of the contents."""
        with self._app.holding(self.lock, "Vector.items"):
            return list(self._items)

    def add_all(self, other: "SyncVector", _pause: PauseHook = None) -> int:
        """Append all of ``other``: locks self, then other (Table 2, Vector row)."""
        with self._app.holding(self.lock, "Vector.add_all", pause=_pause):
            with self._app.holding(other.lock, "Vector.add_all"):
                self._items.extend(other._items)
                return len(self._items)


class SyncHashtable(_SyncBase):
    """A synchronized hash table (``java.util.Hashtable``)."""

    def __init__(self, app: MiniApp):
        super().__init__(app, "hashtable")
        self._data: Dict = {}

    def put(self, key, value) -> None:
        """Store a mapping (self lock only)."""
        with self._app.holding(self.lock, "Hashtable.put"):
            self._data[key] = value

    def get(self, key, default=None):
        """Read a mapping (self lock only)."""
        with self._app.holding(self.lock, "Hashtable.get"):
            return self._data.get(key, default)

    def equals(self, other: "SyncHashtable", _pause: PauseHook = None) -> bool:
        """Structural comparison: locks self, then the entries' containers.

        When ``h1`` is a member of ``h2`` and vice versa, comparing each
        against the other concurrently locks the two tables in opposite
        orders (Table 2, Hashtable row).
        """
        with self._app.holding(self.lock, "Hashtable.equals", pause=_pause):
            for value in self._data.values():
                if isinstance(value, SyncHashtable) and value is not self:
                    with self._app.holding(value.lock, "Hashtable.equals"):
                        if len(value._data) != len(self._data):
                            return False
            if not isinstance(other, SyncHashtable):
                return False
            with self._app.holding(other.lock, "Hashtable.equals"):
                return set(self._data) == set(other._data)


class SyncStringBuffer(_SyncBase):
    """A synchronized mutable string (``java.lang.StringBuffer``)."""

    def __init__(self, app: MiniApp, initial: str = ""):
        super().__init__(app, "stringbuffer")
        self._chunks: List[str] = [initial] if initial else []

    def to_string(self) -> str:
        """Concatenate the contents (self lock only)."""
        with self._app.holding(self.lock, "StringBuffer.to_string"):
            return "".join(self._chunks)

    def append_text(self, text: str) -> "SyncStringBuffer":
        """Append a plain string (self lock only)."""
        with self._app.holding(self.lock, "StringBuffer.append_text"):
            self._chunks.append(text)
            return self

    def append(self, other: "SyncStringBuffer",
               _pause: PauseHook = None) -> "SyncStringBuffer":
        """Append another buffer: locks self, then other (Table 2, StringBuffer row)."""
        with self._app.holding(self.lock, "StringBuffer.append", pause=_pause):
            with self._app.holding(other.lock, "StringBuffer.append"):
                self._chunks.extend(other._chunks)
                return self


class CharArrayWriter(_SyncBase):
    """A synchronized character buffer (``java.io.CharArrayWriter``)."""

    def __init__(self, app: MiniApp):
        super().__init__(app, "chararraywriter")
        self._buffer: List[str] = []

    def write(self, text: str) -> None:
        """Buffer characters (self lock only)."""
        with self._app.holding(self.lock, "CharArrayWriter.write"):
            self._buffer.append(text)

    def contents(self) -> str:
        """The buffered characters."""
        with self._app.holding(self.lock, "CharArrayWriter.contents"):
            return "".join(self._buffer)

    def write_to(self, writer: "SyncPrintWriter", _pause: PauseHook = None) -> int:
        """Flush into a print writer: locks self, then the writer (Table 2,
        PrintWriter row, one direction of the inversion)."""
        with self._app.holding(self.lock, "CharArrayWriter.write_to", pause=_pause):
            with self._app.holding(writer.lock, "CharArrayWriter.write_to"):
                text = "".join(self._buffer)
                writer._sink.append(text)
                return len(text)


class SyncPrintWriter(_SyncBase):
    """A synchronized print writer (``java.io.PrintWriter``)."""

    def __init__(self, app: MiniApp, backing: Optional[CharArrayWriter] = None):
        super().__init__(app, "printwriter")
        self._sink: List[str] = []
        self.backing = backing

    def write(self, text: str, _pause: PauseHook = None) -> None:
        """Write through to the backing buffer: locks self, then the backing
        CharArrayWriter (Table 2, PrintWriter row, the other direction)."""
        with self._app.holding(self.lock, "PrintWriter.write", pause=_pause):
            self._sink.append(text)
            if self.backing is not None:
                with self._app.holding(self.backing.lock, "PrintWriter.write"):
                    self.backing._buffer.append(text)

    def contents(self) -> str:
        """Everything written so far."""
        with self._app.holding(self.lock, "PrintWriter.contents"):
            return "".join(self._sink)


class BeanContext(_SyncBase):
    """``java.beans.beancontext.BeanContextSupport`` in miniature."""

    def __init__(self, app: MiniApp, name: str = "context"):
        super().__init__(app, "beancontext")
        self.name = name
        self.children: List["BeanContext"] = []
        self.properties: Dict[str, object] = {}

    def add_child(self, child: "BeanContext") -> None:
        """Register a child context (self lock only)."""
        with self._app.holding(self.lock, "BeanContext.add_child"):
            self.children.append(child)

    def property_change(self, key: str, value, _pause: PauseHook = None) -> None:
        """Propagate a property change: locks self, then every child
        (Table 2, BeanContextSupport row)."""
        with self._app.holding(self.lock, "BeanContext.property_change", pause=_pause):
            self.properties[key] = value
            for child in list(self.children):
                with self._app.holding(child.lock, "BeanContext.property_change"):
                    child.properties[key] = value

    def remove(self, parent: "BeanContext", _pause: PauseHook = None) -> bool:
        """Detach from a parent: locks self, then the parent — the opposite
        nesting of :meth:`property_change`."""
        with self._app.holding(self.lock, "BeanContext.remove", pause=_pause):
            with self._app.holding(parent.lock, "BeanContext.remove"):
                if self in parent.children:
                    parent.children.remove(self)
                    return True
                return False
