"""A miniature message broker.

Reproduces the two Apache ActiveMQ deadlocks of Table 1:

* **ActiveMQ 3.1 bug #336** — creating a message listener races with the
  active dispatching of messages to the same consumer: listener creation
  locks the *session* then the *dispatcher*, dispatch locks the
  *dispatcher* then the *session*.
* **ActiveMQ 4.0 bug #575** — ``Queue.dropEvent()`` locks the queue then
  the subscription, while ``PrefetchSubscription.add()`` locks the
  subscription then the queue.  The paper notes this bug has three
  distinct deadlock patterns; the additional patterns come from
  ``PrefetchSubscription.remove()`` and the acknowledgement path, both of
  which also nest subscription-then-queue.

The broker otherwise behaves like a small but real pub/sub system: it can
enqueue, dispatch, and acknowledge messages, so throughput workloads
(Figure 4's JBoss/RUBiS stand-in) can run against it.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Deque, Dict, List, Optional

from .base import MiniApp, PauseHook


class PrefetchSubscription:
    """A consumer-side prefetch buffer."""

    _ids = itertools.count(1)

    def __init__(self, broker: "Broker", consumer: str):
        self.subscription_id = next(PrefetchSubscription._ids)
        self.consumer = consumer
        self.broker = broker
        self.lock = broker.make_rlock(f"subscription-{self.subscription_id}")
        self.prefetched: Deque[dict] = deque()
        self.delivered: List[dict] = []

    def add(self, queue: "Queue", message: dict, _pause: PauseHook = None) -> int:
        """Add a message: locks the subscription, then the queue (bug #575)."""
        with self.broker.holding(self.lock, "PrefetchSubscription.add", pause=_pause):
            self.prefetched.append(message)
            with self.broker.holding(queue.lock, "PrefetchSubscription.add"):
                queue.in_flight += 1
            return len(self.prefetched)

    def remove(self, queue: "Queue", _pause: PauseHook = None) -> Optional[dict]:
        """Acknowledge a message: subscription lock, then queue lock (bug #575,
        second pattern)."""
        with self.broker.holding(self.lock, "PrefetchSubscription.remove", pause=_pause):
            if not self.prefetched:
                return None
            message = self.prefetched.popleft()
            self.delivered.append(message)
            with self.broker.holding(queue.lock, "PrefetchSubscription.remove"):
                queue.in_flight = max(0, queue.in_flight - 1)
                queue.dequeued += 1
            return message


class Queue:
    """A broker-side message queue."""

    def __init__(self, broker: "Broker", name: str):
        self.name = name
        self.broker = broker
        self.lock = broker.make_rlock(f"queue-{name}")
        self.messages: Deque[dict] = deque()
        self.subscriptions: List[PrefetchSubscription] = []
        self.in_flight = 0
        self.dequeued = 0

    def enqueue(self, message: dict) -> int:
        """Producer path: queue lock only (not deadlock prone)."""
        with self.broker.holding(self.lock, "Queue.enqueue"):
            self.messages.append(message)
            return len(self.messages)

    def drop_event(self, subscription: PrefetchSubscription,
                   _pause: PauseHook = None) -> int:
        """Handle a consumer drop: locks the queue, then the subscription
        (bug #575, opposite order to :meth:`PrefetchSubscription.add`)."""
        with self.broker.holding(self.lock, "Queue.drop_event", pause=_pause):
            with self.broker.holding(subscription.lock, "Queue.drop_event"):
                recovered = len(subscription.prefetched)
                while subscription.prefetched:
                    self.messages.appendleft(subscription.prefetched.pop())
                if subscription in self.subscriptions:
                    self.subscriptions.remove(subscription)
                return recovered

    def dispatch_one(self, _pause: PauseHook = None) -> bool:
        """Move one message into a subscription's prefetch buffer."""
        with self.broker.holding(self.lock, "Queue.dispatch_one", pause=_pause):
            if not self.messages or not self.subscriptions:
                return False
            message = self.messages.popleft()
            target = self.subscriptions[0]
            with self.broker.holding(target.lock, "Queue.dispatch_one"):
                target.prefetched.append(message)
                self.in_flight += 1
            return True


class Session:
    """A client session; listener registration races with dispatch (bug #336)."""

    _ids = itertools.count(1)

    def __init__(self, broker: "Broker"):
        self.session_id = next(Session._ids)
        self.broker = broker
        self.lock = broker.make_rlock(f"session-{self.session_id}")
        self.consumers: List[str] = []

    def create_consumer(self, name: str, _pause: PauseHook = None) -> str:
        """Register a listener: locks the session, then the dispatcher (bug #336)."""
        with self.broker.holding(self.lock, "Session.create_consumer", pause=_pause):
            self.consumers.append(name)
            with self.broker.holding(self.broker.dispatcher_lock,
                                     "Session.create_consumer"):
                self.broker.dispatch_targets.append((self, name))
            return name


class Broker(MiniApp):
    """The broker: queues, sessions, and the dispatcher thread's lock."""

    def __init__(self, runtime=None, acquire_timeout: Optional[float] = None):
        super().__init__(runtime=runtime, acquire_timeout=acquire_timeout)
        self.queues: Dict[str, Queue] = {}
        self.dispatcher_lock = self.make_rlock("broker-dispatcher")
        self.dispatch_targets: List[tuple] = []
        self._registry_lock = self.make_rlock("broker-registry")

    # -- management ---------------------------------------------------------------------------

    def create_queue(self, name: str) -> Queue:
        """Create (or return) the queue ``name``."""
        with self.holding(self._registry_lock, "Broker.create_queue"):
            queue = self.queues.get(name)
            if queue is None:
                queue = Queue(self, name)
                self.queues[name] = queue
            return queue

    def create_session(self) -> Session:
        """Open a new client session."""
        return Session(self)

    def subscribe(self, queue: Queue, consumer: str) -> PrefetchSubscription:
        """Attach a consumer to a queue."""
        subscription = PrefetchSubscription(self, consumer)
        with self.holding(queue.lock, "Broker.subscribe"):
            queue.subscriptions.append(subscription)
        return subscription

    # -- the bug #336 dispatch path ----------------------------------------------------------------

    def dispatch_to_sessions(self, message: dict, _pause: PauseHook = None) -> int:
        """Active dispatch: locks the dispatcher, then each target session."""
        with self.holding(self.dispatcher_lock, "Broker.dispatch_to_sessions",
                          pause=_pause):
            delivered = 0
            for session, _consumer in list(self.dispatch_targets):
                with self.holding(session.lock, "Broker.dispatch_to_sessions"):
                    delivered += 1
            return delivered

    # -- workload helpers (used by the Figure 4 benchmark) ------------------------------------------

    def produce_consume_cycle(self, queue_name: str, messages: int = 10) -> int:
        """A correct end-to-end produce/dispatch/ack cycle; returns acks."""
        queue = self.create_queue(queue_name)
        if not queue.subscriptions:
            self.subscribe(queue, f"consumer-{queue_name}")
        for index in range(messages):
            queue.enqueue({"id": index})
        dispatched = 0
        while queue.dispatch_one():
            dispatched += 1
        acks = 0
        for subscription in list(queue.subscriptions):
            while subscription.remove(queue) is not None:
                acks += 1
        return acks
