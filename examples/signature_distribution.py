"""Signature distribution: immunize users who never saw the deadlock.

Section 8 of the paper: a vendor (or another user) who has already
encountered a deadlock can ship its signature; installing the signature
file immunizes other deployments proactively — the program can even be
"patched" at runtime by inserting the signature and reloading the history,
without a restart.

This example plays both roles with the JDBC-style connection pool bug
(#2147, getWarnings vs close):

1. the "vendor" reproduces the deadlock in its test lab and exports the
   signature file,
2. the "customer" imports that file into a fresh deployment and never
   deadlocks, on the very first run.

Run it with::

    python examples/signature_distribution.py
"""

from __future__ import annotations

import os
import tempfile
import threading

from repro import Dimmunix, DimmunixConfig
from repro.apps import Connection
from repro.apps.base import AppLockTimeout, interleave_pause
from repro.instrument import InstrumentationRuntime


def race_warnings_against_close(connection: Connection) -> dict:
    """Run PreparedStatement.get_warnings() against Connection.close()."""
    statement = connection.prepare_statement("SELECT * FROM accounts")
    e1, e2 = threading.Event(), threading.Event()
    outcome = {"timeouts": 0}

    def warnings():
        try:
            statement.get_warnings(_pause=interleave_pause(e1, e2, 0.3))
        except AppLockTimeout:
            outcome["timeouts"] += 1

    def closer():
        try:
            connection.close(_pause=interleave_pause(e2, e1, 0.3))
        except AppLockTimeout:
            outcome["timeouts"] += 1

    threads = [threading.Thread(target=warnings), threading.Thread(target=closer)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return outcome


def vendor_builds_signature_file(path: str) -> None:
    print("Vendor lab: reproducing the bug to capture its signature")
    dimmunix = Dimmunix(DimmunixConfig(monitor_interval=0.02, detection_only=True))
    dimmunix.start()
    connection = Connection(runtime=InstrumentationRuntime(dimmunix),
                            acquire_timeout=1.0)
    outcome = race_warnings_against_close(connection)
    dimmunix.stop()
    exported = dimmunix.export_signatures(path)
    print(f"  deadlock reproduced (stuck ops: {outcome['timeouts']}), "
          f"{exported} signature(s) exported to {os.path.basename(path)}")


def customer_runs_with_imported_signatures(path: str) -> None:
    print("\nCustomer site: fresh deployment, signature file installed")
    dimmunix = Dimmunix(DimmunixConfig(monitor_interval=0.02))
    imported = dimmunix.import_signatures(path)
    dimmunix.start()
    print(f"  imported signatures: {imported}")
    connection = Connection(runtime=InstrumentationRuntime(dimmunix),
                            acquire_timeout=1.0)
    outcome = race_warnings_against_close(connection)
    print(f"  stuck operations   : {outcome['timeouts']}  (expected 0)")
    print(f"  yields performed   : {dimmunix.stats.yield_decisions}")
    print(f"  deadlocks observed : {dimmunix.stats.deadlocks_detected}")
    dimmunix.stop()


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        signature_file = os.path.join(workdir, "jdbc-2147.signatures.json")
        vendor_builds_signature_file(signature_file)
        customer_runs_with_imported_signatures(signature_file)
        print("\nThe customer never experienced the deadlock: the imported "
              "signature made the first occurrence avoidable.")


if __name__ == "__main__":
    main()
