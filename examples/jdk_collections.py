"""Invitations to deadlock: synchronized collections (paper Table 2).

Two threads call ``v1.add_all(v2)`` and ``v2.add_all(v1)`` on synchronized
vectors — perfectly legal API usage that deadlocks inside the library.
The example first lets the deadlock happen (detection run), then shows the
program running to completion once the signature is known, and finally
demonstrates that the avoidance is fine grained: the same method running
on an unrelated pair of vectors is not serialized at all.

Run it with::

    python examples/jdk_collections.py
"""

from __future__ import annotations

import threading

from repro import Dimmunix, DimmunixConfig, History
from repro.apps import MiniApp, SyncVector
from repro.apps.base import AppLockTimeout, interleave_pause
from repro.instrument import InstrumentationRuntime


def cross_add_all(app: MiniApp, verbose_label: str) -> dict:
    """v1.add_all(v2) and v2.add_all(v1) in parallel; returns what happened."""
    v1 = SyncVector(app, ["a", "b"])
    v2 = SyncVector(app, ["c", "d"])
    e1, e2 = threading.Event(), threading.Event()
    outcome = {"timeouts": 0, "sizes": []}

    def left():
        try:
            outcome["sizes"].append(
                v1.add_all(v2, _pause=interleave_pause(e1, e2, 0.3)))
        except AppLockTimeout:
            outcome["timeouts"] += 1

    def right():
        try:
            outcome["sizes"].append(
                v2.add_all(v1, _pause=interleave_pause(e2, e1, 0.3)))
        except AppLockTimeout:
            outcome["timeouts"] += 1

    threads = [threading.Thread(target=left), threading.Thread(target=right)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    print(f"  {verbose_label}: timeouts={outcome['timeouts']}, "
          f"result sizes={outcome['sizes']}")
    return outcome


def main() -> None:
    history = History()  # in-memory; a real deployment would give it a path

    print("Run 1: detection only (the deadlock is allowed to happen)")
    detection = Dimmunix(DimmunixConfig(monitor_interval=0.02, detection_only=True),
                         history=history)
    detection.start()
    app = MiniApp(runtime=InstrumentationRuntime(detection), acquire_timeout=1.0)
    cross_add_all(app, "addAll/addAll on the same pair")
    detection.stop()
    print(f"  signatures archived: {len(history)}")

    print("\nRun 2: immune (signature in history)")
    immune = Dimmunix(DimmunixConfig(monitor_interval=0.02), history=history)
    immune.start()
    app = MiniApp(runtime=InstrumentationRuntime(immune), acquire_timeout=1.0)
    cross_add_all(app, "addAll/addAll on the same pair")
    print(f"  yields performed: {immune.stats.yield_decisions}")

    print("\nStill run 2: unrelated vectors are NOT serialized "
          "(finer grain than gate locks)")
    yields_before = immune.stats.yield_decisions
    v3 = SyncVector(app, [1])
    v4 = SyncVector(app, [2])
    t = threading.Thread(target=lambda: v3.add_all(v4))
    t.start()
    v4_size = v4.add_all(SyncVector(app, [3]))
    t.join()
    print(f"  extra yields caused: {immune.stats.yield_decisions - yields_before} "
          f"(v4 now has {v4_size} items)")
    immune.stop()


if __name__ == "__main__":
    main()
