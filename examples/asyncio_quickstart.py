"""Asyncio quickstart: make a deadlock-prone event loop immune in two runs.

This example reproduces the paper's section 4 scenario with asyncio
tasks instead of threads:

* Run 1 — the program deadlocks (two tasks lock A and B in opposite
  order with ``async with``-style acquisitions); the whole event loop's
  progress on those locks wedges, Dimmunix's monitor detects the cycle,
  archives its signature in a history file, and the program recovers via
  a bounded lock timeout (standing in for the restart a user would
  perform).
* Run 2 — the same program, started again with the same history file, no
  longer deadlocks: the *task* that would re-create the pattern is
  parked (only that task — the loop keeps running) until the danger
  passes.

Run it with::

    PYTHONPATH=src python examples/asyncio_quickstart.py
"""

from __future__ import annotations

import asyncio
import os
import sys
import tempfile

from repro import Dimmunix, DimmunixConfig
from repro.instrument.aio import AioLock, AsyncioRuntime


async def update(first: AioLock, second: AioLock,
                 my_ready: asyncio.Event, other_ready: asyncio.Event,
                 outcome: dict) -> None:
    """Lock ``first`` then ``second`` — half of the section 4 inversion.

    The ready events force the conflicting task to reach its own first
    lock (the async version of the paper's timing-loop exploits); the
    bounded second acquisition lets a deadlocked run recover.
    """
    if not await first.acquire(timeout=2.0):
        outcome["deadlocked"] = True
        return
    try:
        my_ready.set()
        try:
            await asyncio.wait_for(other_ready.wait(), 0.3)
        except asyncio.TimeoutError:
            pass
        if not await second.acquire(timeout=2.0):
            outcome["deadlocked"] = True
            return
        try:
            outcome["completed"] += 1
        finally:
            second.release()
    finally:
        first.release()


async def buggy_program(runtime: AsyncioRuntime) -> dict:
    """Two tasks calling update(A, B) and update(B, A) concurrently."""
    lock_a = AioLock(runtime=runtime, name="A")
    lock_b = AioLock(runtime=runtime, name="B")
    outcome = {"deadlocked": False, "completed": 0}
    ready = [asyncio.Event(), asyncio.Event()]
    await asyncio.gather(
        update(lock_a, lock_b, ready[0], ready[1], outcome),
        update(lock_b, lock_a, ready[1], ready[0], outcome),
    )
    return outcome


def run_once(history_path: str, run_number: int) -> dict:
    config = DimmunixConfig(history_path=history_path, monitor_interval=0.02)
    dimmunix = Dimmunix(config=config)
    dimmunix.start()
    runtime = AsyncioRuntime(dimmunix)
    outcome = asyncio.run(buggy_program(runtime))
    dimmunix.stop()

    report = dimmunix.report()
    print(f"--- run {run_number} ---")
    print(f"  deadlocked        : {outcome['deadlocked']}")
    print(f"  tasks completed   : {outcome['completed']} / 2")
    print(f"  yields (avoidance): {report['stats']['yield_decisions']}")
    print(f"  signatures known  : {report['history_size']}")
    for signature in dimmunix.signatures():
        print(f"  signature {signature.fingerprint}: {signature.kind}, "
              f"{signature.size} tasks")
    return outcome


def main() -> int:
    with tempfile.TemporaryDirectory() as workdir:
        history_path = os.path.join(workdir, "asyncio_quickstart.history")
        print("Dimmunix asyncio quickstart: the same event loop, run twice.\n")
        first = run_once(history_path, run_number=1)
        print()
        second = run_once(history_path, run_number=2)
        assert first["deadlocked"], "run 1 should deadlock and learn"
        assert not second["deadlocked"], "run 2 should be immune"
        assert second["completed"] == 2, "both tasks should complete in run 2"
        print("\nRun 1 deadlocked the loop and produced a signature; "
              "run 2 was immune.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
