"""Share quickstart: one deadlock immunizes a whole fleet of processes.

The paper's section 6 deployment story, runnable on a laptop:

* Worker A — a real OS process with an *empty* history — runs a
  deadlock-prone program and deadlocks.  Its monitor archives the
  signature and publishes it into a shared signature pool before the
  process exits.
* Workers B and C — fresh processes that never saw the deadlock —
  join the same pool, install A's signature on sync, run the *same*
  program, and complete without deadlocking.  First run, already immune.

The pool here is the serverless shared-file transport (an append-only
signature log with advisory locking); swap ``file`` for ``unix`` or
``tcp`` to run the same story through the history daemon.  Run it with::

    PYTHONPATH=src python examples/share_quickstart.py
"""

from __future__ import annotations

import tempfile

from repro.share.demo import run_demo


def main() -> None:
    print("Dimmunix history sharing: one deadlock, a fleet immunized.\n")
    with tempfile.TemporaryDirectory(prefix="dimmunix-share-") as workdir:
        summary = run_demo("file", workers=3, workdir=workdir)
    results = {result["worker"]: result for result in summary["results"]}
    assert results["A"]["deadlocked"], "worker A should experience the deadlock"
    assert all(not results[w]["deadlocked"] for w in ("B", "C")), \
        "workers B and C should be immune on their first run"
    print("\nWorker A deadlocked once; every later process was born immune.")


if __name__ == "__main__":
    main()
