"""Deterministic simulation at scale: 512 dining philosophers.

The simulator runs the same avoidance engine as the real-thread
instrumentation but on virtual time, which makes large-scale and otherwise
flaky scenarios exactly reproducible.  This example:

1. lets 512 philosophers deadlock (a cycle involving many threads),
2. shows the archived signature,
3. re-runs the same scenario immune, counting how many yields were needed,
4. compares with the Rx-style rollback/retry baseline, which has to
   re-execute until it gets lucky and learns nothing along the way.

Run it with::

    python examples/simulation_at_scale.py
"""

from __future__ import annotations

from repro.baselines import rx_retry
from repro.core.config import DimmunixConfig
from repro.sim import (DimmunixBackend, NullBackend, SimScheduler,
                       philosopher_program)


PHILOSOPHERS = 512


def build_table(backend, seed: int = 0, meals: int = 1) -> SimScheduler:
    scheduler = SimScheduler(backend=backend, seed=seed)
    forks = [scheduler.new_lock(f"fork-{i}") for i in range(PHILOSOPHERS)]
    for seat in range(PHILOSOPHERS):
        left = forks[seat]
        right = forks[(seat + 1) % PHILOSOPHERS]
        scheduler.add_thread(philosopher_program(left, right, seat,
                                                 think_time=0.0,
                                                 eat_time=0.001, meals=meals))
    return scheduler


def main() -> None:
    print(f"{PHILOSOPHERS} dining philosophers, everyone grabs the left fork first.\n")

    print("Run 1: no immunity — the classic cyclic deadlock")
    backend = DimmunixBackend(config=DimmunixConfig.for_testing(detection_only=True))
    result = build_table(backend).run()
    print(f"  deadlocked        : {result.deadlocked}")
    print(f"  meals completed   : {result.completed_threads}/{result.total_threads}")
    print(f"  signatures saved  : {len(backend.history)}")
    for signature in backend.history.signatures():
        print(f"  signature         : {signature.fingerprint} "
              f"({signature.size} call stacks, kind={signature.kind})")

    print("\nRun 2: immune (same history)")
    immune_backend = DimmunixBackend(config=DimmunixConfig.for_testing(),
                                     history=backend.history)
    result = build_table(immune_backend).run()
    stats = result.backend_stats
    print(f"  deadlocked        : {result.deadlocked}")
    print(f"  meals completed   : {result.completed_threads}/{result.total_threads}")
    print(f"  yields performed  : {stats.get('yield_decisions')}")
    print(f"  starvations broken: {stats.get('starvations_broken')}")
    print(f"  lock operations   : {result.lock_ops}")

    print("\nBaseline: Rx-style rollback & retry (new timing each attempt)")
    outcome = rx_retry(lambda seed: build_table(NullBackend(), seed=seed),
                       max_retries=6)
    print(f"  attempts needed   : {outcome.attempts} "
          f"(deadlocks on the way: {outcome.deadlocks_encountered})")
    print(f"  final run complete: {outcome.succeeded}")
    print("  ...and the program is no better prepared for the next run, "
          "unlike with deadlock immunity.")


if __name__ == "__main__":
    main()
