"""Quickstart: make a deadlock-prone program immune in two runs.

This example reproduces the paper's section 4 scenario with real threads:

* Run 1 — the program deadlocks (two threads lock A and B in opposite
  order); Dimmunix detects the cycle, archives its signature in a history
  file, and the program recovers via a bounded lock timeout (standing in
  for the restart a user would perform).
* Run 2 — the same program, started again with the same history file, no
  longer deadlocks: the thread that would re-create the pattern is made to
  yield until the danger passes.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

import os
import tempfile
import threading

from repro import Dimmunix, DimmunixConfig
from repro.instrument import DimmunixLock, InstrumentationRuntime


def buggy_program(runtime: InstrumentationRuntime) -> dict:
    """Two threads calling update(A, B) and update(B, A) concurrently."""
    lock_a = DimmunixLock(runtime=runtime, name="A")
    lock_b = DimmunixLock(runtime=runtime, name="B")
    shared = {"A": 0, "B": 0}
    outcome = {"deadlocked": False, "completed": 0}
    ready = [threading.Event(), threading.Event()]

    def update(first, second, my_index):
        # Acquire the first lock, wait for the other thread to do the same
        # (this is what the paper's timing-loop exploits arrange), then go
        # for the second lock with a bounded wait so a deadlocked run can
        # recover.
        if not first.acquire(timeout=2.0):
            outcome["deadlocked"] = True
            return
        try:
            ready[my_index].set()
            ready[1 - my_index].wait(0.3)
            if not second.acquire(timeout=2.0):
                outcome["deadlocked"] = True
                return
            try:
                shared["A"] += 1
                shared["B"] += 1
                outcome["completed"] += 1
            finally:
                second.release()
        finally:
            first.release()

    threads = [
        threading.Thread(target=update, args=(lock_a, lock_b, 0), name="worker-1"),
        threading.Thread(target=update, args=(lock_b, lock_a, 1), name="worker-2"),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return outcome


def run_once(history_path: str, run_number: int) -> None:
    config = DimmunixConfig(history_path=history_path, monitor_interval=0.02)
    dimmunix = Dimmunix(config=config)
    dimmunix.start()
    runtime = InstrumentationRuntime(dimmunix)
    outcome = buggy_program(runtime)
    dimmunix.stop()

    report = dimmunix.report()
    print(f"--- run {run_number} ---")
    print(f"  deadlocked        : {outcome['deadlocked']}")
    print(f"  threads completed : {outcome['completed']} / 2")
    print(f"  yields (avoidance): {report['stats']['yield_decisions']}")
    print(f"  signatures known  : {report['history_size']}")
    for signature in dimmunix.signatures():
        print(f"  signature {signature.fingerprint}: {signature.kind}, "
              f"{signature.size} threads")


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        history_path = os.path.join(workdir, "quickstart.history")
        print("Dimmunix quickstart: the same program, run twice.\n")
        run_once(history_path, run_number=1)
        print()
        run_once(history_path, run_number=2)
        print("\nRun 1 deadlocked and produced a signature; run 2 was immune.")


if __name__ == "__main__":
    main()
