"""Explore-quickstart: the simulator as a model checker, end to end.

Walks the full exploration workflow on the paper's section 4 deadlock:

1. enumerate every bounded interleaving of update(A, B) vs update(B, A)
   under ``NullBackend`` and find the deadlocking schedules;
2. shrink the first counterexample to a minimal schedule trace;
3. save the trace to JSON, reload it, and replay it byte-identically;
4. run the :class:`ImmunityChecker`: seed a Dimmunix history from the
   minimal counterexample and verify that *zero* bounded interleavings
   deadlock once the signature is known.

Run::

    PYTHONPATH=src python examples/explore_quickstart.py [--quick]

``--quick`` tightens the bounds (used by the CI smoke job).
"""

from __future__ import annotations

import os
import sys
import tempfile

from repro.sim import (Explorer, ImmunityChecker, NullBackend, ScheduleTrace,
                       build_two_lock_inversion)


def main(quick: bool = False) -> int:
    max_runs = 200 if quick else 5_000

    print("== 1. Bounded exhaustive exploration under NullBackend ==")
    explorer = Explorer(lambda: build_two_lock_inversion(NullBackend()),
                        name="two-lock-inversion", max_runs=max_runs)
    found = explorer.explore()
    print(f"   explored {found.runs} interleavings "
          f"({found.steps} states, exhausted={found.exhausted}): "
          f"{found.deadlock_count} deadlocking, {found.completed} completing")
    assert found.deadlock_count >= 1, "expected at least one deadlock"

    print("== 2. Greedy shrinking of the first counterexample ==")
    original = found.deadlocks[0].trace
    minimal = explorer.shrink(original)
    print(f"   {len(original)} choices -> {len(minimal)}: {minimal.choices}")

    print("== 3. Record/replay round trip ==")
    with tempfile.TemporaryDirectory() as workdir:
        path = os.path.join(workdir, "deadlock.trace.json")
        minimal.save(path)
        reloaded = ScheduleTrace.load(path)
        replayed = explorer.replay(reloaded)
        assert replayed.deadlocked, "replay must reproduce the deadlock"
        assert list(replayed.schedule) == reloaded.choices, "schedule drifted"
        assert reloaded.dumps() == minimal.dumps(), "serialization not stable"
    print(f"   replayed {len(reloaded)} choices byte-identically; "
          f"deadlock reproduced at t={replayed.virtual_time:.6f}")

    print("== 4. Immunity over the whole bounded schedule space ==")
    checker = ImmunityChecker(build_two_lock_inversion,
                              name="two-lock-inversion", max_runs=max_runs)
    report = checker.check()
    for key, value in report.as_dict().items():
        print(f"   {key}: {value}")
    assert report.holds, "immunity claim failed"
    print("   PASS: vulnerable without history, zero deadlocking "
          "interleavings with it")
    return 0


if __name__ == "__main__":
    sys.exit(main(quick="--quick" in sys.argv[1:]))
