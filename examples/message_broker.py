"""A message broker that becomes immune to an ActiveMQ-style deadlock.

The mini broker reproduces ActiveMQ bug #575: ``Queue.drop_event()`` locks
the queue and then the subscription while ``PrefetchSubscription.add()``
locks them in the opposite order.  The example:

1. runs a normal produce/dispatch/acknowledge workload (no deadlock),
2. triggers the bug once (detection run) and shows the archived signature,
3. repeats the dangerous operation under immunity and shows that the
   broker keeps serving its normal workload with negligible impact.

Run it with::

    python examples/message_broker.py
"""

from __future__ import annotations

import threading
import time

from repro import Dimmunix, DimmunixConfig, History
from repro.apps import Broker
from repro.apps.base import AppLockTimeout, interleave_pause
from repro.instrument import InstrumentationRuntime


def trigger_bug_575(broker: Broker) -> int:
    """Race Queue.drop_event against PrefetchSubscription.add; returns timeouts."""
    queue = broker.create_queue("orders")
    subscription = broker.subscribe(queue, "order-processor")
    queue.enqueue({"id": 1})
    e1, e2 = threading.Event(), threading.Event()
    timeouts = [0]

    def adder():
        try:
            subscription.add(queue, {"id": 2},
                             _pause=interleave_pause(e1, e2, 0.3))
        except AppLockTimeout:
            timeouts[0] += 1

    def dropper():
        try:
            queue.drop_event(subscription,
                             _pause=interleave_pause(e2, e1, 0.3))
        except AppLockTimeout:
            timeouts[0] += 1

    threads = [threading.Thread(target=adder), threading.Thread(target=dropper)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return timeouts[0]


def serve_workload(broker: Broker, workers: int = 4, cycles: int = 5) -> float:
    """Run the normal produce/dispatch/ack workload; returns ops/second."""
    done = []

    def worker(index: int) -> None:
        total = 0
        for _ in range(cycles):
            total += broker.produce_consume_cycle(f"tenant-{index}", messages=8)
        done.append(total)

    started = time.perf_counter()
    threads = [threading.Thread(target=worker, args=(i,)) for i in range(workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    return sum(done) / elapsed


def main() -> None:
    history = History()

    print("Phase 1: normal operation (no deadlock, nothing to avoid)")
    dimmunix = Dimmunix(DimmunixConfig(monitor_interval=0.02), history=history)
    dimmunix.start()
    broker = Broker(runtime=InstrumentationRuntime(dimmunix), acquire_timeout=1.0)
    print(f"  workload throughput: {serve_workload(broker):.0f} acks/s")

    print("\nPhase 2: the ActiveMQ #575 race fires (first occurrence)")
    timeouts = trigger_bug_575(broker)
    dimmunix.process_now()
    print(f"  stuck operations   : {timeouts}")
    print(f"  deadlocks detected : {dimmunix.stats.deadlocks_detected}")
    for signature in dimmunix.signatures():
        print(f"  archived signature : {signature.fingerprint} "
              f"({signature.size} threads)")
    dimmunix.stop()

    print("\nPhase 3: same broker code, now immune")
    immune = Dimmunix(DimmunixConfig(monitor_interval=0.02), history=history)
    immune.start()
    broker = Broker(runtime=InstrumentationRuntime(immune), acquire_timeout=1.0)
    timeouts = trigger_bug_575(broker)
    throughput = serve_workload(broker)
    print(f"  stuck operations   : {timeouts}")
    print(f"  yields performed   : {immune.stats.yield_decisions}")
    print(f"  workload throughput: {throughput:.0f} acks/s (still serving)")
    immune.stop()


if __name__ == "__main__":
    main()
