"""Tests for the SignaturePool and its engine/runtime wiring.

Proves the tentpole properties without any worker processes:

* locally archived signatures publish to the channel the instant the
  history learns them,
* remote signatures install into the *live* engine on a monitor pass —
  the striped signature index picks them up and the very next request
  can yield on them (no restart),
* installs never echo back out of the pool,
* deterministic cross-"deployment" immunity through the memory hub, for
  engines and for two full runtimes in one process.
"""

from __future__ import annotations


import pytest

from repro.core.avoidance import Decision
from repro.core.callstack import CallStack
from repro.core.config import DimmunixConfig
from repro.core.dimmunix import Dimmunix
from repro.core.errors import MonitorError
from repro.core.history import History
from repro.core.signature import Signature
from repro.share import MemoryHub, SignaturePool, make_control
from repro.share.channel import HistoryChannel


def stack(*labels):
    return CallStack.from_labels(list(labels))


def make_signature(label: str, depth: int = 2) -> Signature:
    return Signature([stack(f"{label}:1", "update:1"),
                      stack(f"{label}:1", "update:2")],
                     matching_depth=depth)


class FailingChannel(HistoryChannel):
    """A channel whose transport always fails (dead daemon stand-in)."""

    def publish(self, signature):
        raise OSError("transport down")

    def poll(self):
        raise OSError("transport down")

    def snapshot(self):
        raise OSError("transport down")


class TestSignaturePool:
    def test_local_add_publishes_immediately(self):
        hub = MemoryHub()
        history = History(path=None, autosave=False)
        pool = SignaturePool(history, hub.channel())
        history.add(make_signature("local"))
        assert len(hub) == 1
        assert pool.published == 1

    def test_pump_installs_remote_signatures(self):
        hub = MemoryHub()
        history = History(path=None, autosave=False)
        pool = SignaturePool(history, hub.channel())
        hub.channel().publish(make_signature("remote"))
        assert pool.pump() == 1
        assert len(history) == 1
        assert pool.pump() == 0

    def test_installed_signatures_do_not_echo(self):
        hub = MemoryHub()
        history = History(path=None, autosave=False)
        pool = SignaturePool(history, hub.channel())
        hub.channel().publish(make_signature("remote"))
        pool.pump()
        # The install triggered the history listener, but the pool must
        # not publish a remote signature back into the pool.
        assert pool.published == 0
        assert len(hub) == 1

    def test_sync_pushes_existing_history(self):
        hub = MemoryHub()
        history = History(path=None, autosave=False)
        history.add(make_signature("preexisting"))
        pool = SignaturePool(history, hub.channel())
        hub.channel().publish(make_signature("remote"))
        installed = pool.sync()
        assert installed == 1
        assert len(history) == 2
        assert len(hub) == 2

    def test_transport_failures_never_raise(self):
        history = History(path=None, autosave=False)
        pool = SignaturePool(history, FailingChannel())
        history.add(make_signature("doomed"))       # publish swallowed
        assert pool.publish_errors == 1
        assert pool.pump() == 0                     # poll swallowed
        assert pool.sync() == 0                     # snapshot swallowed
        assert len(history) == 1                    # immunity still local

    def test_close_detaches_listener(self):
        hub = MemoryHub()
        history = History(path=None, autosave=False)
        pool = SignaturePool(history, hub.channel())
        pool.close()
        assert pool.closed
        # The listener must actually be gone (bound-method equality, not
        # identity): repeated attach/detach cycles must not accumulate
        # dead listeners on a long-lived history.
        assert pool._publish_local not in history._listeners
        history.add(make_signature("after-close"))
        assert len(hub) == 0
        pool.close()  # idempotent

    def test_report(self):
        hub = MemoryHub()
        history = History(path=None, autosave=False)
        pool = SignaturePool(history, hub.channel())
        history.add(make_signature("r")); pool.pump()
        report = pool.report()
        assert report["published"] == 1
        assert report["history_size"] == 1


class TestDimmunixWiring:
    def test_attach_via_constructor_and_monitor_pass(self):
        hub = MemoryHub()
        a = Dimmunix(DimmunixConfig.for_testing(), share=hub.channel())
        b = Dimmunix(DimmunixConfig.for_testing(), share=hub.channel())
        a.history.add(make_signature("cross"))
        assert len(b.history) == 0
        b.process_now()                      # the monitor pass pumps
        assert len(b.history) == 1
        assert b.report()["share"]["installed"] == 1

    def test_double_attach_raises(self):
        hub = MemoryHub()
        dim = Dimmunix(DimmunixConfig.for_testing(), share=hub.channel())
        with pytest.raises(MonitorError):
            dim.attach_share(hub.channel())
        dim.detach_share()
        dim.attach_share(hub.channel())      # fine after detach

    def test_attach_share_by_memory_spec(self):
        from repro.share import memory_hub, reset_memory_hubs
        reset_memory_hubs()
        a = Dimmunix(DimmunixConfig.for_testing(), share="memory://spec-test")
        b = Dimmunix(DimmunixConfig.for_testing(), share="memory://spec-test")
        a.history.add(make_signature("spec"))
        b.process_now()
        assert len(b.history) == 1
        assert len(memory_hub("spec-test")) == 1

    def test_runtime_core_passthrough(self):
        hub = MemoryHub()
        dim = Dimmunix(DimmunixConfig.for_testing())
        pool = dim.runtime_core.attach_share(hub.channel())
        assert dim.runtime_core.share_pool is pool
        assert dim.share_pool is pool

    def test_stop_flushes_and_closes_the_pool(self):
        hub = MemoryHub()
        dim = Dimmunix(DimmunixConfig.for_testing(), share=hub.channel())
        pool = dim.share_pool
        other = hub.channel()
        other.publish(make_signature("late"))
        dim.start()
        dim.stop()
        # stop() pumped one final time before closing the channel.
        assert len(dim.history) == 1
        assert pool.closed
        assert dim.share_pool is None

    def test_remote_signature_reaches_live_engine(self):
        """The headline property: a remote install makes the *running*
        engine yield on the next matching request — no restart."""
        hub = MemoryHub()
        dim = Dimmunix(DimmunixConfig.for_testing(), share=hub.channel())
        engine = dim.engine
        s1 = stack("lock:1", "update:1", "main:0")
        s2 = stack("lock:1", "update:2", "main:0")
        # Before the remote signature arrives: everything is GO.
        assert engine.request(1, 10, s1).decision is Decision.GO
        engine.acquired(1, 10, s1)
        # Another "process" learns the deadlock and publishes it.
        hub.channel().publish(make_signature("lock", depth=2))
        dim.process_now()
        # The same pattern is now dangerous: thread 2 must yield.
        outcome = engine.request(2, 20, s2)
        assert outcome.decision is Decision.YIELD
        assert outcome.signature.fingerprint == \
            make_signature("lock", depth=2).fingerprint


class TestDeterministicCrossRuntimeImmunity:
    """Two full runtimes in one process, pooled through the memory hub.

    This is the sim-channel acceptance criterion: the cross-deployment
    immunity story runs deterministically — every install point is an
    explicit ``process_now()`` call, no sockets, files, or sleeps.
    """

    def test_run_twice_across_two_runtimes(self):
        from repro.instrument.runtime import InstrumentationRuntime
        from repro.share.demo import _deadlock_prone_program

        hub = MemoryHub()
        # Deployment A: empty history, deadlocks once.
        dim_a = Dimmunix(DimmunixConfig.for_testing(), share=hub.channel())
        dim_a.start()
        outcome_a = _deadlock_prone_program(InstrumentationRuntime(dim_a))
        dim_a.stop()
        assert outcome_a["deadlocked"]
        assert len(dim_a.history) >= 1
        assert len(hub) >= 1

        # Deployment B: fresh runtime, never deadlocked, first run immune.
        dim_b = Dimmunix(DimmunixConfig.for_testing(), share=hub.channel())
        assert len(dim_b.history) >= 1        # installed on attach sync
        dim_b.start()
        outcome_b = _deadlock_prone_program(InstrumentationRuntime(dim_b))
        dim_b.stop()
        assert not outcome_b["deadlocked"]
        assert outcome_b["completed"] == 2
        assert dim_b.stats.snapshot()["yield_decisions"] >= 1


class ControlRejectingChannel(HistoryChannel):
    """Claims control support but fails every control send."""

    supports_controls = True

    def publish(self, signature):
        pass

    def poll(self):
        return []

    def snapshot(self):
        return []

    def publish_control(self, control):
        raise OSError("control plane down")


class TestPoolBatching:
    def test_window_coalesces_instead_of_publishing(self):
        hub = MemoryHub()
        history = History(path=None, autosave=False)
        pool = SignaturePool(history, hub.channel(), coalesce_window=60.0)
        history.add(make_signature("queued-1"))
        history.add(make_signature("queued-2"))
        assert pool.published == 0
        assert pool.pending_outbound == 2
        assert len(hub) == 0
        assert pool.flush() == 2
        assert pool.published == 2
        assert len(hub) == 2
        assert pool.pending_outbound == 0

    def test_pump_flushes_an_elapsed_window(self):
        import time as _time
        hub = MemoryHub()
        history = History(path=None, autosave=False)
        pool = SignaturePool(history, hub.channel(), coalesce_window=0.02)
        history.add(make_signature("due"))
        assert pool.published == 0
        _time.sleep(0.03)
        pool.pump()
        assert pool.published == 1

    def test_bounded_queue_drops_oldest_and_counts(self):
        """A slow subscriber (never-flushed window) hits the bound."""
        hub = MemoryHub()
        history = History(path=None, autosave=False)
        pool = SignaturePool(history, hub.channel(), coalesce_window=60.0,
                             max_outbound=3)
        for index in range(5):
            history.add(make_signature(f"burst-{index}"))
        assert pool.publish_dropped == 2
        assert pool.pending_outbound == 3
        assert pool.flush() == 3
        assert pool.report()["publish_dropped"] == 2

    def test_sync_reoffers_dropped_signatures(self):
        hub = MemoryHub()
        history = History(path=None, autosave=False)
        pool = SignaturePool(history, hub.channel(), coalesce_window=60.0,
                             max_outbound=2)
        for index in range(4):
            history.add(make_signature(f"re-{index}"))
        assert pool.publish_dropped == 2
        pool.sync()
        # Dropping only ever *delays* sharing: the full history reaches
        # the channel on the next sync.
        assert len(hub) == 4

    def test_close_flushes_the_queue(self):
        hub = MemoryHub()
        history = History(path=None, autosave=False)
        pool = SignaturePool(history, hub.channel(), coalesce_window=60.0)
        history.add(make_signature("final"))
        pool.close()
        assert len(hub) == 1


class TestPoolControlPlane:
    def make_wired_pair(self):
        """Two histories pooled through one hub (two 'workers')."""
        hub = MemoryHub()
        history_a = History(path=None, autosave=False)
        history_b = History(path=None, autosave=False)
        pool_a = SignaturePool(history_a, hub.channel(), origin="worker-a")
        pool_b = SignaturePool(history_b, hub.channel(), origin="worker-b")
        return hub, (history_a, pool_a), (history_b, pool_b)

    def test_local_disable_originates_a_control(self):
        hub, (history_a, pool_a), (history_b, pool_b) = self.make_wired_pair()
        signature = make_signature("shared")
        history_a.add(signature)
        pool_b.pump()
        history_a.disable(signature.fingerprint)
        assert pool_a.controls_published == 1
        # The other worker applies it on its next pump — live, no restart.
        pool_b.pump()
        assert pool_b.controls_applied == 1
        assert history_b.enabled_signatures() == []
        assert len(history_b) == 1

    def test_applied_controls_do_not_echo(self):
        hub, (history_a, pool_a), (history_b, pool_b) = self.make_wired_pair()
        signature = make_signature("echoes")
        history_a.add(signature)
        pool_b.pump()
        history_a.disable(signature.fingerprint)
        pool_b.pump()
        # pool_b disabled its local history, but must not re-originate
        # that as a fresh control record.
        assert pool_b.controls_published == 0
        assert len(hub._controls) == 1       # nothing new after the first

    def test_stale_controls_lose_last_writer_wins(self):
        hub, (history_a, pool_a), (history_b, pool_b) = self.make_wired_pair()
        signature = make_signature("lww")
        history_a.add(signature)
        pool_b.pump()
        history_b.disable(signature.fingerprint)     # clock 1 @ worker-b
        pool_a.pump()
        history_a.enable(signature.fingerprint)      # clock 2 @ worker-a
        pool_b.pump()
        assert [s.fingerprint for s in history_b.enabled_signatures()] == \
            [signature.fingerprint]
        # Replay the stale disable directly: it must not win.
        stale = make_control("disable", signature.fingerprint,
                             clock=1, origin="worker-b")
        applied = pool_b._apply_controls([stale])
        assert applied == 0
        assert history_b.enabled_signatures() != []

    def test_remove_control_blocks_late_arrivals(self):
        hub, (history_a, pool_a), (history_b, pool_b) = self.make_wired_pair()
        signature = make_signature("tombstone")
        history_a.add(signature)
        history_a.remove(signature.fingerprint)
        pool_b.pump()
        assert pool_b.controls_applied == 1
        # The record arrives *after* the remove (late, out of order):
        # the held control keeps it out of the history.
        probe = hub.channel()
        probe._seen.clear()
        probe.publish(make_signature("tombstone"))
        pool_b.pump()
        assert len(history_b) == 0

    def test_control_failures_degrade_not_raise(self):
        history = History(path=None, autosave=False)
        pool = SignaturePool(history, ControlRejectingChannel())
        signature = make_signature("unlucky")
        history.add(signature)
        history.disable(signature.fingerprint)      # swallowed
        assert pool.control_errors == 1
        assert pool.controls_published == 0
        assert history.signatures()                 # local state intact

    def test_channels_without_control_support_are_skipped(self):
        history = History(path=None, autosave=False)
        pool = SignaturePool(history, FailingChannel())
        signature = make_signature("plain")
        history.add(signature)
        history.disable(signature.fingerprint)
        assert pool.control_errors == 0
        assert pool.controls_published == 0

    def test_report_counters(self):
        hub, (history_a, pool_a), _ = self.make_wired_pair()
        signature = make_signature("counted")
        history_a.add(signature)
        history_a.disable(signature.fingerprint)
        report = pool_a.report()
        assert report["controls_published"] == 1
        assert report["controls_applied"] == 0
        assert report["control_errors"] == 0
        assert report["pending_outbound"] == 0
