"""Unit tests for matching-depth calibration and the FP heuristic."""

from __future__ import annotations


from repro.core.calibration import Calibrator, LockOp, find_lock_inversion
from repro.core.callstack import CallStack
from repro.core.config import DimmunixConfig
from repro.core.signature import Signature


def stack(*labels):
    return CallStack.from_labels(list(labels))


def make_signature(depth=1):
    return Signature([stack("a:1", "b:2", "c:3"), stack("a:4", "b:5", "c:6")],
                     matching_depth=depth)


def make_calibrator(**overrides):
    config = DimmunixConfig.for_testing(calibration_enabled=True,
                                        calibration_na=2, calibration_nt=10,
                                        matching_depth=1, max_stack_depth=3,
                                        **overrides)
    return Calibrator(config)


class TestLockInversionHeuristic:
    def test_detects_inversion(self):
        ops = [
            LockOp(thread_id=1, lock_id=100, held_before=()),
            LockOp(thread_id=1, lock_id=200, held_before=(100,)),
            LockOp(thread_id=2, lock_id=200, held_before=()),
            LockOp(thread_id=2, lock_id=100, held_before=(200,)),
        ]
        assert find_lock_inversion(ops) is not None

    def test_no_inversion_same_order(self):
        ops = [
            LockOp(thread_id=1, lock_id=200, held_before=(100,)),
            LockOp(thread_id=2, lock_id=200, held_before=(100,)),
        ]
        assert find_lock_inversion(ops) is None

    def test_single_thread_never_inverts(self):
        ops = [
            LockOp(thread_id=1, lock_id=200, held_before=(100,)),
            LockOp(thread_id=1, lock_id=100, held_before=(200,)),
        ]
        assert find_lock_inversion(ops) is None

    def test_empty_log(self):
        assert find_lock_inversion([]) is None


class TestCalibratorLifecycle:
    def test_disabled_calibration_is_noop(self):
        calibrator = Calibrator(DimmunixConfig.for_testing(calibration_enabled=False))
        signature = make_signature(depth=4)
        assert calibrator.on_avoidance(signature, 1, 10, stack("a:1"), [], []) is None
        assert signature.matching_depth == 4

    def test_new_signature_starts_at_depth_one(self):
        calibrator = make_calibrator()
        signature = make_signature(depth=3)
        calibrator.on_avoidance(signature, 1, 10, stack("a:1"), [], [1, 2, 3])
        assert signature.matching_depth == 1

    def test_false_positive_recorded_when_no_inversion(self):
        calibrator = make_calibrator()
        signature = make_signature()
        calibrator.on_avoidance(signature, 1, 10, stack("a:1"),
                                [(2, 20, stack("a:4"))], [1])
        # The yielded thread resumes, acquires, then releases: episode closes.
        calibrator.on_lock_acquired(1, 10, (), stack("a:1"))
        calibrator.on_lock_released(1, 10)
        assert calibrator.verdicts[-1][2] is True  # was a false positive
        assert calibrator.stats.false_positives == 1

    def test_true_positive_when_inversion_seen(self):
        calibrator = make_calibrator()
        signature = make_signature()
        calibrator.on_avoidance(signature, 1, 10, stack("a:1"),
                                [(2, 20, stack("a:4"))], [1])
        # Thread 2 acquires 10 while holding 20; thread 1 acquires 20 while
        # holding 10: a lock inversion, so the avoidance was justified.
        calibrator.on_lock_acquired(2, 10, (20,), stack("x:1"))
        calibrator.on_lock_acquired(1, 20, (10,), stack("y:1"))
        calibrator.on_lock_acquired(1, 10, (), stack("a:1"))
        calibrator.on_lock_released(1, 10)
        assert calibrator.verdicts[-1][2] is False
        assert calibrator.stats.true_positives == 1

    def test_depth_advances_after_na_avoidances(self):
        calibrator = make_calibrator()
        signature = make_signature()
        for _ in range(2):  # NA = 2 avoidances at depth 1
            calibrator.on_avoidance(signature, 1, 10, stack("a:1"), [], [1])
            calibrator.on_lock_acquired(1, 10, (), stack("a:1"))
            calibrator.on_lock_released(1, 10)
        assert signature.matching_depth == 2

    def test_calibration_completes_and_selects_lowest_fp_depth(self):
        calibrator = make_calibrator()
        signature = make_signature()
        # Depth 1 and 2: false positives; depth 3: true positives.
        for round_index in range(6):
            depth = signature.matching_depth
            calibrator.on_avoidance(signature, 1, 10, stack("a:1"),
                                    [(2, 20, stack("a:4"))], [depth])
            if depth < 3:
                calibrator.on_lock_acquired(1, 10, (), stack("a:1"))
            else:
                calibrator.on_lock_acquired(2, 10, (20,), stack("x:1"))
                calibrator.on_lock_acquired(1, 20, (10,), stack("y:1"))
                calibrator.on_lock_acquired(1, 10, (), stack("a:1"))
            calibrator.on_lock_released(1, 10)
        state = calibrator.state_of(signature)
        assert state["completed"]
        # Depth 3 had the lowest FP rate, so it must have been selected.
        assert signature.matching_depth == 3

    def test_deeper_depths_charged_for_fp(self):
        calibrator = make_calibrator()
        signature = make_signature()
        calibrator.on_avoidance(signature, 1, 10, stack("a:1"), [], [1, 2, 3])
        calibrator.on_lock_acquired(1, 10, (), stack("a:1"))
        calibrator.on_lock_released(1, 10)
        state = calibrator.state_of(signature)
        assert state["fps_at_depth"] == {1: 1, 2: 1, 3: 1}

    def test_episode_closes_at_window_limit(self):
        calibrator = make_calibrator(fp_window=3)
        signature = make_signature()
        calibrator.on_avoidance(signature, 1, 10, stack("a:1"),
                                [(2, 20, stack("a:4"))], [1])
        for _ in range(3):
            calibrator.on_lock_acquired(2, 30, (), stack("z:1"))
        assert calibrator.open_episodes() == 0

    def test_recalibrate_all_resets_depth(self):
        calibrator = make_calibrator()
        signature = make_signature(depth=3)
        calibrator.on_avoidance(signature, 1, 10, stack("a:1"), [], [])
        calibrator.recalibrate_all([signature])
        assert signature.matching_depth == 1
        assert not calibrator.state_of(signature)["completed"]

    def test_false_positive_rate(self):
        calibrator = make_calibrator()
        signature = make_signature()
        assert calibrator.false_positive_rate(signature) is None
        calibrator.on_avoidance(signature, 1, 10, stack("a:1"), [], [1])
        calibrator.on_lock_acquired(1, 10, (), stack("a:1"))
        calibrator.on_lock_released(1, 10)
        assert calibrator.false_positive_rate(signature) == 1.0


class TestCalibrationWithEngine:
    def test_engine_reports_avoidances_to_calibrator(self):
        from repro.core.avoidance import AvoidanceEngine
        from repro.core.history import History

        config = DimmunixConfig.for_testing(calibration_enabled=True,
                                            calibration_na=2, matching_depth=1,
                                            max_stack_depth=3)
        history = History()
        signature = Signature([stack("lock:1", "f:1"), stack("lock:2", "g:1")],
                              matching_depth=2)
        history.add(signature)
        calibrator = Calibrator(config)
        engine = AvoidanceEngine(history, config, calibrator=calibrator)
        # Calibration resets the depth to 1 on first contact; drive a yield.
        engine.request(1, 10, stack("lock:2", "g:1", "main:0"))
        engine.acquired(1, 10, stack("lock:2", "g:1", "main:0"))
        outcome = engine.request(2, 11, stack("lock:1", "f:1", "main:0"))
        assert outcome.is_yield
        assert calibrator.open_episodes() == 1
