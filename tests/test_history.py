"""Unit tests for the persistent signature history."""

from __future__ import annotations

import json
import os

import pytest

from repro.core.errors import HistoryFormatError
from repro.core.history import History
from repro.core.signature import Signature


def make_signature(suffix="a", depth=4):
    return Signature.from_stacks([[f"lock{suffix}:1", "update:2"],
                                  [f"lock{suffix}:3", "main:4"]],
                                 matching_depth=depth)


class TestInMemory:
    def test_add_and_lookup(self):
        history = History()
        signature = make_signature()
        assert history.add(signature)
        assert signature in history
        assert history.get(signature.fingerprint) is signature
        assert len(history) == 1

    def test_duplicate_add_bumps_occurrence(self):
        history = History()
        history.add(make_signature())
        assert not history.add(make_signature())
        assert len(history) == 1
        assert history.signatures()[0].occurrence_count == 2

    def test_disable_enable(self):
        history = History()
        signature = make_signature()
        history.add(signature)
        assert history.disable(signature.fingerprint)
        assert history.enabled_signatures() == []
        assert history.enable(signature.fingerprint)
        assert len(history.enabled_signatures()) == 1

    def test_disable_unknown_returns_false(self):
        assert not History().disable("nope")

    def test_remove(self):
        history = History()
        signature = make_signature()
        history.add(signature)
        assert history.remove(signature.fingerprint)
        assert len(history) == 0
        assert not history.remove(signature.fingerprint)

    def test_clear(self):
        history = History()
        history.add(make_signature("a"))
        history.add(make_signature("b"))
        history.clear()
        assert len(history) == 0

    def test_merge_counts_new_only(self):
        history = History()
        history.add(make_signature("a"))
        other = [make_signature("a"), make_signature("b")]
        assert history.merge(other) == 1
        assert len(history) == 2

    def test_listener_invoked_on_new_signature(self):
        history = History()
        seen = []
        history.add_listener(seen.append)
        history.add(make_signature("a"))
        history.add(make_signature("a"))
        assert len(seen) == 1

    def test_iteration(self):
        history = History()
        history.add(make_signature("a"))
        history.add(make_signature("b"))
        assert len(list(history)) == 2


class TestPersistence:
    def test_save_and_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "history.json")
        history = History(path=path)
        signature = make_signature(depth=6)
        signature.record_avoidance()
        history.add(signature)

        loaded = History(path=path)
        assert len(loaded) == 1
        restored = loaded.signatures()[0]
        assert restored == signature
        assert restored.matching_depth == 6
        assert restored.avoidance_count == 1

    def test_autosave_on_disable(self, tmp_path):
        path = str(tmp_path / "history.json")
        history = History(path=path)
        signature = make_signature()
        history.add(signature)
        history.disable(signature.fingerprint)
        loaded = History(path=path)
        assert loaded.signatures()[0].disabled

    def test_reload_picks_up_external_changes(self, tmp_path):
        path = str(tmp_path / "history.json")
        history = History(path=path)
        history.add(make_signature("a"))
        # Another process (the vendor's patch tool) adds a signature.
        other = History(path=None, autosave=False)
        other.add(make_signature("a"))
        other.add(make_signature("b"))
        other.save(path)
        assert history.reload() == 2

    def test_load_missing_file_is_noop(self, tmp_path):
        history = History(path=str(tmp_path / "absent.json"))
        assert len(history) == 0

    def test_load_garbage_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(HistoryFormatError):
            History(path=str(path))

    def test_load_wrong_shape_raises(self, tmp_path):
        path = tmp_path / "wrong.json"
        path.write_text(json.dumps({"something": []}))
        with pytest.raises(HistoryFormatError):
            History(path=str(path))

    def test_save_without_path_returns_none(self):
        assert History().save() is None

    def test_export_import(self, tmp_path):
        history = History()
        history.add(make_signature("a"))
        history.add(make_signature("b"))
        export_path = str(tmp_path / "signatures.json")
        assert history.export_signatures(export_path) == 2
        imported = History.import_signatures(export_path)
        assert len(imported) == 2

    def test_export_selected_fingerprints(self, tmp_path):
        history = History()
        sig_a = make_signature("a")
        history.add(sig_a)
        history.add(make_signature("b"))
        export_path = str(tmp_path / "one.json")
        assert history.export_signatures(export_path, [sig_a.fingerprint]) == 1

    def test_disk_footprint_positive(self):
        history = History()
        history.add(make_signature())
        assert history.disk_footprint() > 100

    def test_atomic_save_leaves_no_temp_files(self, tmp_path):
        path = str(tmp_path / "history.json")
        history = History(path=path)
        history.add(make_signature())
        leftovers = [name for name in os.listdir(tmp_path)
                     if name.startswith(".dimmunix-history-")]
        assert leftovers == []
