"""Unit tests for the monitor (detection, archiving, starvation breaking)."""

from __future__ import annotations

import pytest

from repro.core.avoidance import AvoidanceEngine
from repro.core.callstack import CallStack
from repro.core.config import DimmunixConfig, STRONG_IMMUNITY
from repro.core.errors import RestartRequired
from repro.core.history import History
from repro.core.monitor import MonitorCore
from repro.core.signature import Signature


def stack(*labels):
    return CallStack.from_labels(list(labels))


S1 = stack("lock:4", "update:1", "main:0")
S2 = stack("lock:4", "update:2", "main:0")


def build(config=None, history=None, **monitor_kwargs):
    history = history if history is not None else History()
    config = config or DimmunixConfig.for_testing()
    engine = AvoidanceEngine(history, config)
    monitor = MonitorCore(engine, history, config, **monitor_kwargs)
    return engine, monitor, history


def drive_deadlock(engine):
    """Thread 1 holds lock 1 and waits for 2; thread 2 holds 2 and waits for 1."""
    engine.request(1, 1, S1)
    engine.acquired(1, 1, S1)
    engine.request(2, 2, S2)
    engine.acquired(2, 2, S2)
    engine.request(1, 2, S1)
    engine.request(2, 1, S2)


class TestDeadlockDetection:
    def test_deadlock_archived_once(self):
        engine, monitor, history = build()
        drive_deadlock(engine)
        new = monitor.process()
        assert len(new) == 1
        assert new[0].kind == "deadlock"
        assert len(history) == 1
        # Re-processing while the cycle persists must not duplicate it.
        assert monitor.process() == []
        assert len(history) == 1

    def test_signature_contains_hold_stacks(self):
        engine, monitor, history = build()
        drive_deadlock(engine)
        monitor.process()
        signature = history.signatures()[0]
        tops = sorted(frame.top().function for frame in signature.stacks)
        assert tops == ["lock", "lock"]
        assert signature.size == 2

    def test_deadlock_handler_invoked(self):
        calls = []
        engine, monitor, history = build(
            deadlock_handler=lambda sig, cycle: calls.append((sig, cycle)))
        drive_deadlock(engine)
        monitor.process()
        assert len(calls) == 1
        assert calls[0][0] in history

    def test_stats_updated(self):
        engine, monitor, _ = build()
        drive_deadlock(engine)
        monitor.process()
        assert engine.stats.deadlocks_detected == 1
        assert engine.stats.signatures_added == 1
        assert engine.stats.monitor_wakeups >= 1
        assert engine.stats.events_processed >= 6

    def test_no_false_deadlocks_for_clean_program(self):
        engine, monitor, history = build()
        engine.request(1, 1, S1)
        engine.acquired(1, 1, S1)
        engine.release(1, 1)
        engine.request(2, 1, S2)
        engine.acquired(2, 1, S2)
        engine.release(2, 1)
        monitor.process()
        assert len(history) == 0


class TestStarvationHandling:
    # Stacks used to manufacture an induced starvation: two signatures make
    # thread 1 yield because of thread 2's hold and vice versa, so neither
    # parked thread's cause can ever release — the paper's yield cycle.
    SA = stack("acquire:1", "producer:0")
    SB = stack("acquire:2", "consumer:0")
    SC = stack("acquire:3", "producer:0")
    SD = stack("acquire:4", "consumer:0")

    def _drive_starvation(self, engine):
        """Two threads yielding on each other's holds (no real deadlock)."""
        engine.history.add(Signature([self.SC.suffix(2), self.SB.suffix(2)],
                                     matching_depth=2))
        engine.history.add(Signature([self.SD.suffix(2), self.SA.suffix(2)],
                                     matching_depth=2))
        engine.request(1, 1, self.SA)
        engine.acquired(1, 1, self.SA)
        engine.request(2, 2, self.SB)
        engine.acquired(2, 2, self.SB)
        # Thread 1 asks for lock 3: matches {SC, SB} via thread 2's hold.
        assert engine.request(1, 3, self.SC).is_yield
        # Thread 2 asks for lock 4: matches {SD, SA} via thread 1's hold.
        assert engine.request(2, 4, self.SD).is_yield

    def test_weak_immunity_breaks_starvation(self):
        woken = []
        engine, monitor, history = build(wake_callback=woken.extend)
        self._drive_starvation(engine)
        new = monitor.process()
        kinds = [c.kind for c in new]
        assert "starvation" in kinds
        assert engine.stats.starvations_broken == 1
        assert len(woken) == 1
        victim = woken[0]
        # The victim's next request is forced to GO.
        retry_lock = 3 if victim == 1 else 4
        retry_stack = self.SC if victim == 1 else self.SD
        assert engine.request(victim, retry_lock, retry_stack).is_go
        # The starvation signature was archived in the history.
        assert any(sig.kind == "starvation" for sig in history.signatures())

    def test_strong_immunity_requests_restart(self):
        config = DimmunixConfig.for_testing(immunity=STRONG_IMMUNITY)
        engine, monitor, _ = build(config=config)
        self._drive_starvation(engine)
        with pytest.raises(RestartRequired):
            monitor.process()
        assert engine.stats.restarts_requested == 1

    def test_strong_immunity_with_handler(self):
        restarts = []
        config = DimmunixConfig.for_testing(immunity=STRONG_IMMUNITY)
        engine, monitor, _ = build(config=config,
                                   restart_handler=lambda sig, cyc: restarts.append(sig))
        self._drive_starvation(engine)
        monitor.process()
        assert len(restarts) == 1
