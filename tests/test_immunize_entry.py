"""Tests for the unified entry point: repro.immunize(runtime=...).

One front door covers thread programs, asyncio programs, and mixed
programs — always against a single shared engine — and the historical
``immunize_asyncio`` survives as a deprecated but functional alias.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

import repro
from repro.core.errors import DimmunixError
from repro.instrument import aio as raio
from repro.instrument import patching
from repro.instrument.entry import ImmunityHandle, RUNTIMES


@pytest.fixture(autouse=True)
def clean_patches():
    yield
    patching.uninstall()
    raio.uninstall_asyncio()


class TestImmunizeThreads:
    def test_default_runtime_patches_threading(self):
        handle = repro.immunize()
        try:
            assert isinstance(handle, ImmunityHandle)
            assert handle.threads is not None
            assert handle.aio is None
            assert handle.dimmunix.running
            lock = threading.Lock()
            assert type(lock).__module__.startswith("repro")
        finally:
            handle.stop()
        assert threading.Lock().__class__.__module__ == "_thread"

    def test_handle_delegates_to_the_runtime(self):
        handle = repro.immunize(history_path=None)
        try:
            # Historical call sites read runtime attributes off the
            # return value; the handle forwards what it lacks.
            assert handle.config is handle.dimmunix.config
            assert handle.engine is handle.threads.engine
            assert handle.yields is handle.threads.yields
        finally:
            handle.stop()

    def test_stop_is_idempotent_and_context_managed(self):
        with repro.immunize() as handle:
            assert not handle.stopped
        assert handle.stopped
        handle.stop()                      # second stop: no-op
        assert not handle.dimmunix.running

    def test_report_reaches_the_engine(self):
        handle = repro.immunize()
        try:
            assert "history_size" in handle.report()
        finally:
            handle.stop()


class TestImmunizeAsyncio:
    def test_asyncio_runtime_patches_asyncio_only(self):
        handle = repro.immunize(runtime="asyncio")
        try:
            assert handle.threads is None
            assert handle.aio is not None
            assert raio.asyncio_installed()
            assert threading.Lock().__class__.__module__ == "_thread"

            async def probe():
                return type(asyncio.Lock()).__name__

            assert asyncio.run(probe()) == "AioLock"
        finally:
            handle.stop()
        assert not raio.asyncio_installed()

    def test_immunize_asyncio_is_deprecated_but_works(self):
        with pytest.warns(DeprecationWarning, match="immunize_asyncio"):
            runtime = repro.immunize_asyncio()
        try:
            assert raio.asyncio_installed()
            assert runtime.dimmunix.running
        finally:
            runtime.dimmunix.stop()
            raio.uninstall_asyncio()


class TestImmunizeBoth:
    def test_both_shares_one_engine(self):
        handle = repro.immunize(runtime="both")
        try:
            assert handle.threads is not None
            assert handle.aio is not None
            # ONE engine backs both runtimes: a deadlock learned on a
            # thread immunizes the event loop too.
            assert handle.threads.dimmunix is handle.aio.dimmunix
            assert handle.threads.dimmunix is handle.dimmunix
            assert raio.asyncio_installed()
            assert threading.Lock().__class__.__module__.startswith("repro")
        finally:
            handle.stop()
        assert not raio.asyncio_installed()
        assert threading.Lock().__class__.__module__ == "_thread"

    def test_repr_names_the_runtimes(self):
        handle = repro.immunize(runtime="both")
        try:
            assert "threads+asyncio" in repr(handle)
            assert "running" in repr(handle)
        finally:
            handle.stop()
        assert "stopped" in repr(handle)


class TestImmunizeValidation:
    def test_unknown_runtime_raises(self):
        with pytest.raises(DimmunixError) as err:
            repro.immunize(runtime="goroutines")
        for runtime in RUNTIMES:
            assert runtime in str(err.value)
        # Nothing was left half-installed.
        assert threading.Lock().__class__.__module__ == "_thread"
        assert not raio.asyncio_installed()

    def test_share_spec_reaches_the_engine(self):
        from repro.share import memory_hub, reset_memory_hubs
        reset_memory_hubs()
        handle = repro.immunize(share="memory://entry-test")
        try:
            report = handle.report()
            assert report["share"]["channel"] == "memory://entry-test"
            assert memory_hub("entry-test") is not None
        finally:
            handle.stop()

    def test_config_object_with_history_path_override(self, tmp_path):
        from repro.core.config import DimmunixConfig
        path = str(tmp_path / "h.json")
        handle = repro.immunize(config=DimmunixConfig(),
                                history_path=path)
        try:
            assert handle.dimmunix.config.history_path == path
        finally:
            handle.stop()
