"""Thread- and asyncio-runtime tests for engine-tracked semaphores and rwlocks.

The acceptance story, against real threads and a real event loop: a
permit-exhaustion deadlock and an rwlock upgrade inversion each manifest
(via timeout recovery) on the first run, archive a signature, and are
avoided on the second run against the same history.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.core.config import DimmunixConfig
from repro.core.dimmunix import Dimmunix
from repro.core.history import History
from repro.core.signature import SHARED
from repro.instrument import patching
from repro.instrument.aio import AioRWLock, AioSemaphore, AsyncioRuntime
from repro.instrument.locks import (DimmunixBoundedSemaphore, DimmunixRWLock,
                                    DimmunixSemaphore)
from repro.instrument.runtime import InstrumentationRuntime


@pytest.fixture
def runtime(config, history):
    return InstrumentationRuntime(Dimmunix(config=config, history=history))


class TestDimmunixSemaphoreBasics:
    def test_acquire_release_and_permits(self, runtime):
        sem = DimmunixSemaphore(2, runtime=runtime)
        assert sem.acquire()
        assert sem.acquire()
        assert sem.permits_held() == 2
        assert not sem.acquire(blocking=False)  # pool exhausted
        sem.release()
        assert sem.acquire(blocking=False)
        sem.release(2)
        assert sem.permits_held() == 0

    def test_context_manager(self, runtime):
        sem = DimmunixSemaphore(1, runtime=runtime)
        with sem:
            assert sem.permits_held() == 1
        assert sem.permits_held() == 0

    def test_engine_sees_multiple_holders(self, runtime):
        sem = DimmunixSemaphore(2, runtime=runtime)
        sem.acquire()
        other = []
        holding = threading.Event()
        done = threading.Event()

        def taker():
            other.append(sem.acquire(timeout=1.0))
            holding.set()
            done.wait(2.0)  # stay alive so per-thread state is inspectable
            sem.release()

        thread = threading.Thread(target=taker)
        thread.start()
        assert holding.wait(2.0)
        assert other == [True]
        assert len(runtime.engine.cache.holders_of(sem.lock_id)) == 2
        done.set()
        thread.join()
        sem.release()

    def test_timeout_and_cancel(self, runtime):
        sem = DimmunixSemaphore(1, runtime=runtime)
        sem.acquire()
        result = []
        thread = threading.Thread(
            target=lambda: result.append(sem.acquire(timeout=0.05)))
        thread.start()
        thread.join()
        assert result == [False]
        assert runtime.engine.stats.cancels >= 1
        sem.release()

    def test_nonblocking_with_timeout_rejected(self, runtime):
        sem = DimmunixSemaphore(1, runtime=runtime)
        with pytest.raises(ValueError):
            sem.acquire(blocking=False, timeout=0.1)

    def test_zero_value_semaphore_signals(self, runtime):
        sem = DimmunixSemaphore(0, runtime=runtime)
        sem.release()
        assert sem.acquire(blocking=False)

    def test_bounded_overrelease_raises_before_engine_damage(self, runtime):
        sem = DimmunixBoundedSemaphore(1, runtime=runtime)
        sem.acquire()
        sem.release()
        with pytest.raises(ValueError):
            sem.release()
        # Engine state must still be clean: a fresh cycle works.
        assert sem.acquire()
        sem.release()


class TestDimmunixRWLockBasics:
    def test_readers_coexist(self, runtime):
        rwlock = DimmunixRWLock(runtime=runtime)
        assert rwlock.acquire_read()
        got = []

        def reader():
            got.append(rwlock.acquire_read(timeout=1.0))
            rwlock.release_read()

        thread = threading.Thread(target=reader)
        thread.start()
        thread.join()
        assert got == [True]
        rwlock.release_read()

    def test_writer_excludes_readers(self, runtime):
        rwlock = DimmunixRWLock(runtime=runtime)
        with rwlock.write_lock():
            got = []
            thread = threading.Thread(
                target=lambda: got.append(rwlock.acquire_read(timeout=0.05)))
            thread.start()
            thread.join()
            assert got == [False]

    def test_writer_waits_for_readers(self, runtime):
        rwlock = DimmunixRWLock(runtime=runtime)
        rwlock.acquire_read()
        got = []
        thread = threading.Thread(
            target=lambda: got.append(rwlock.acquire_write(timeout=0.05)))
        thread.start()
        thread.join()
        assert got == [False]
        rwlock.release_read()

    def test_release_without_hold_raises(self, runtime):
        rwlock = DimmunixRWLock(runtime=runtime)
        from repro.core.errors import InstrumentationError
        with pytest.raises(InstrumentationError):
            rwlock.release_read()
        with pytest.raises(InstrumentationError):
            rwlock.release_write()

    def test_engine_records_shared_holds(self, runtime):
        rwlock = DimmunixRWLock(runtime=runtime)
        with rwlock.read_lock():
            assert runtime.engine.is_multiholder(rwlock.lock_id)


def _run_thread_sem_trial(history):
    """Two workers, a 2-permit pool, each worker needs both permits."""
    dimmunix = Dimmunix(config=DimmunixConfig(monitor_interval=0.02),
                        history=history)
    dimmunix.start()
    runtime = InstrumentationRuntime(dimmunix)
    sem = DimmunixSemaphore(2, runtime=runtime)
    barrier = threading.Barrier(2)
    timeouts = []

    def worker(index):
        barrier.wait()
        got_first = sem.acquire(timeout=2.0)
        time.sleep(0.05)
        got_second = sem.acquire(timeout=0.6)
        if not got_second:
            timeouts.append(index)
            if got_first:
                sem.release()
            return
        sem.release(2)

    threads = [threading.Thread(target=worker, args=(index,))
               for index in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    time.sleep(0.1)  # give the monitor a full tick over the stalled state
    dimmunix.stop()
    return timeouts, dimmunix


def _run_thread_rwlock_trial(history):
    """Two readers that both upgrade to write while still reading."""
    dimmunix = Dimmunix(config=DimmunixConfig(monitor_interval=0.02),
                        history=history)
    dimmunix.start()
    runtime = InstrumentationRuntime(dimmunix)
    rwlock = DimmunixRWLock(runtime=runtime)
    barrier = threading.Barrier(2)
    timeouts = []

    def upgrader(index):
        barrier.wait()
        assert rwlock.acquire_read(timeout=2.0)
        time.sleep(0.05)
        if not rwlock.acquire_write(timeout=0.6):
            timeouts.append(index)
            rwlock.release_read()
            return
        rwlock.release_write()
        rwlock.release_read()

    threads = [threading.Thread(target=upgrader, args=(index,))
               for index in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    time.sleep(0.1)
    dimmunix.stop()
    return timeouts, dimmunix


class TestThreadRunTwiceImmunity:
    def test_semaphore_exhaustion_learned_then_avoided(self):
        history = History(path=None, autosave=False)
        first, _ = _run_thread_sem_trial(history)
        assert first, "first run should hit the permit-exhaustion deadlock"
        assert len(history) >= 1
        second, dimmunix = _run_thread_sem_trial(history)
        assert second == [], "seeded history must avoid the deadlock"
        assert dimmunix.stats.snapshot().get("yield_decisions", 0) >= 1

    def test_rwlock_upgrade_learned_then_avoided(self):
        history = History(path=None, autosave=False)
        first, _ = _run_thread_rwlock_trial(history)
        assert first, "first run should hit the upgrade inversion"
        assert len(history) >= 1
        learned = history.signatures()[0]
        assert SHARED in learned.modes
        second, dimmunix = _run_thread_rwlock_trial(history)
        assert second == []
        assert dimmunix.stats.snapshot().get("yield_decisions", 0) >= 1


class TestPatchingCoversSemaphores:
    def test_install_patches_semaphore_factories(self, config):
        patching.install(config=config)
        try:
            sem = threading.Semaphore(3)
            bounded = threading.BoundedSemaphore(2)
            assert isinstance(sem, DimmunixSemaphore)
            assert isinstance(bounded, DimmunixBoundedSemaphore)
            assert sem.capacity == 3
        finally:
            patching.uninstall()
        assert threading.Semaphore is patching._original_semaphore

    def test_internal_callers_keep_native_semaphores(self, config):
        patching.install(config=config)
        try:
            # concurrent.futures builds semaphores from library code paths;
            # simplest probe: a caller inside repro.* gets native types.
            from repro.instrument.patching import _original_semaphore
            assert threading.Semaphore is not _original_semaphore
        finally:
            patching.uninstall()


def _run_aio_sem_trial(history):
    dimmunix = Dimmunix(config=DimmunixConfig(monitor_interval=0.02),
                        history=history)
    dimmunix.start()
    runtime = AsyncioRuntime(dimmunix)

    async def scenario():
        sem = AioSemaphore(2, runtime=runtime)
        timeouts = []

        async def worker(index):
            assert await sem.acquire(timeout=2.0)
            await asyncio.sleep(0.03)
            if not await sem.acquire(timeout=0.5):
                timeouts.append(index)
                sem.release()
                return
            sem.release()
            sem.release()

        await asyncio.gather(worker(0), worker(1))
        return timeouts

    timeouts = asyncio.run(scenario())
    time.sleep(0.08)
    dimmunix.stop()
    return timeouts, dimmunix


def _run_aio_rwlock_trial(history):
    dimmunix = Dimmunix(config=DimmunixConfig(monitor_interval=0.02),
                        history=history)
    dimmunix.start()
    runtime = AsyncioRuntime(dimmunix)

    async def scenario():
        rwlock = AioRWLock(runtime=runtime)
        timeouts = []

        async def upgrader(index):
            assert await rwlock.acquire_read(timeout=2.0)
            await asyncio.sleep(0.03)
            if not await rwlock.acquire_write(timeout=0.5):
                timeouts.append(index)
                rwlock.release_read()
                return
            rwlock.release_write()
            rwlock.release_read()

        await asyncio.gather(upgrader(0), upgrader(1))
        return timeouts

    timeouts = asyncio.run(scenario())
    time.sleep(0.08)
    dimmunix.stop()
    return timeouts, dimmunix


class TestAioRunTwiceImmunity:
    def test_counting_semaphore_learned_then_avoided(self):
        history = History(path=None, autosave=False)
        first, _ = _run_aio_sem_trial(history)
        assert first
        assert len(history) >= 1
        second, dimmunix = _run_aio_sem_trial(history)
        assert second == []
        assert dimmunix.stats.snapshot().get("yield_decisions", 0) >= 1

    def test_rwlock_upgrade_learned_then_avoided(self):
        history = History(path=None, autosave=False)
        first, _ = _run_aio_rwlock_trial(history)
        assert first
        assert len(history) >= 1
        assert SHARED in history.signatures()[0].modes
        second, dimmunix = _run_aio_rwlock_trial(history)
        assert second == []
        assert dimmunix.stats.snapshot().get("yield_decisions", 0) >= 1


class TestAioBasics:
    def test_counting_semaphore_engine_tracked(self, config, history):
        dimmunix = Dimmunix(config=config, history=history)
        runtime = AsyncioRuntime(dimmunix)

        async def scenario():
            sem = AioSemaphore(3, runtime=runtime)
            assert await sem.acquire()
            assert await sem.acquire()
            assert len(runtime.engine.cache.holders_of(sem.lock_id)) == 1
            assert runtime.engine.capacity_of(sem.lock_id) == 3
            sem.release()
            sem.release()

        asyncio.run(scenario())

    def test_rwlock_readers_coexist_writer_excludes(self, config, history):
        dimmunix = Dimmunix(config=config, history=history)
        runtime = AsyncioRuntime(dimmunix)

        async def scenario():
            rwlock = AioRWLock(runtime=runtime)

            async def reader(hold):
                async with rwlock.read_lock():
                    await hold.wait()

            release = asyncio.Event()
            tasks = [asyncio.ensure_future(reader(release)) for _ in range(2)]
            await asyncio.sleep(0.02)
            assert rwlock.reader_count() == 2
            assert not await rwlock.acquire_write(timeout=0.05)
            release.set()
            await asyncio.gather(*tasks)
            assert await rwlock.acquire_write(timeout=1.0)
            rwlock.release_write()

        asyncio.run(scenario())

    def test_rwlock_cancellation_rolls_back(self, config, history):
        dimmunix = Dimmunix(config=config, history=history)
        runtime = AsyncioRuntime(dimmunix)

        async def scenario():
            rwlock = AioRWLock(runtime=runtime)
            assert await rwlock.acquire_read()

            async def writer():
                # acquire_write is called *inside* this task so the
                # acquisition carries the writer task's identity (calling
                # it in the spawner would be a legal self-upgrade).
                await rwlock.acquire_write()

            waiter = asyncio.ensure_future(writer())
            await asyncio.sleep(0.02)
            waiter.cancel()
            try:
                await waiter
            except asyncio.CancelledError:
                pass
            assert dimmunix.stats.snapshot().get("cancels", 0) >= 1
            rwlock.release_read()

        asyncio.run(scenario())
