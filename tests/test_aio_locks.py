"""Tests of the asyncio runtime: drop-in primitives, parking, edge cases.

The scenario helpers reproduce the section 4 two-lock inversion with
asyncio tasks (the event-loop analogue of ``examples/quickstart.py``):
run one — deadlock, detect, learn; run two — the task that would
re-instantiate the pattern is parked and everything completes.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.core.config import DimmunixConfig
from repro.core.dimmunix import Dimmunix
from repro.core.errors import InstrumentationError
from repro.core.history import History
from repro.instrument import aio as raio
from repro.instrument.aio import (AioCondition, AioLock, AioSemaphore,
                                  AsyncioRuntime)


def _make_runtime(history=None, start=True, **overrides) -> AsyncioRuntime:
    config = DimmunixConfig.for_testing(**overrides)
    dimmunix = Dimmunix(config=config, history=history)
    if start:
        dimmunix.start()
    return AsyncioRuntime(dimmunix)


async def _update(first: AioLock, second: AioLock,
                  my_ready: asyncio.Event, other_ready: asyncio.Event,
                  outcome: dict) -> None:
    """Half of the two-lock inversion, with bounded recovery."""
    if not await first.acquire(timeout=1.5):
        outcome["deadlocked"] = True
        return
    try:
        my_ready.set()
        try:
            await asyncio.wait_for(other_ready.wait(), 0.2)
        except asyncio.TimeoutError:
            pass
        if not await second.acquire(timeout=1.5):
            outcome["deadlocked"] = True
            return
        try:
            outcome["completed"] += 1
        finally:
            second.release()
    finally:
        first.release()


async def _inversion(runtime: AsyncioRuntime) -> dict:
    lock_a = AioLock(runtime=runtime, name="A")
    lock_b = AioLock(runtime=runtime, name="B")
    outcome = {"deadlocked": False, "completed": 0}
    ready = [asyncio.Event(), asyncio.Event()]
    await asyncio.gather(
        _update(lock_a, lock_b, ready[0], ready[1], outcome),
        update2(lock_b, lock_a, ready[1], ready[0], outcome),
    )
    return outcome


# A second function so the two tasks have distinct call sites, as in the
# paper's s1/s2 statements.
async def update2(first, second, my_ready, other_ready, outcome):
    await _update(first, second, my_ready, other_ready, outcome)


class TestAioLockBasics:
    def test_acquire_release_and_locked(self):
        runtime = _make_runtime(start=False)

        async def main():
            lock = AioLock(runtime=runtime, name="basic")
            assert not lock.locked()
            assert await lock.acquire()
            assert lock.locked()
            assert lock.owner == runtime.current_task_id()
            lock.release()
            assert not lock.locked()
            assert lock.owner is None

        asyncio.run(main())

    def test_nested_async_with(self):
        """Nested ``async with`` over distinct locks acquires and releases
        in LIFO order without engine residue."""
        runtime = _make_runtime(start=False)

        async def main():
            outer = AioLock(runtime=runtime, name="outer")
            inner = AioLock(runtime=runtime, name="inner")
            async with outer:
                assert outer.locked()
                async with inner:
                    assert inner.locked() and outer.locked()
                assert not inner.locked() and outer.locked()
            assert not outer.locked()
            # Nesting again in the opposite task order still works: the
            # engine rolled everything back.
            async with inner:
                async with outer:
                    assert inner.locked() and outer.locked()

        asyncio.run(main())

    def test_release_from_another_task_is_allowed(self):
        """``asyncio.Lock`` parity: any task may release a held lock (the
        engine release is recorded under the acquiring identity), but
        releasing an unheld lock raises."""
        runtime = _make_runtime(start=False)

        async def main():
            lock = AioLock(runtime=runtime)
            await lock.acquire()

            async def other_task():
                lock.release()

            await asyncio.gather(other_task())
            assert not lock.locked()
            with pytest.raises(InstrumentationError):
                lock.release()
            # The engine rolled the hold back: reacquire works.
            assert await lock.acquire(timeout=1.0)
            lock.release()

        asyncio.run(main())

    def test_wait_for_wrapped_acquire_keeps_task_identity(self):
        """``await asyncio.wait_for(lock.acquire(), t)`` — which runs the
        coroutine in a wrapper task on Python ≤ 3.11 — must record engine
        state under the logical caller, end to end: learn, then immune."""
        history = History(path=None, autosave=False)

        async def update(first, second, my_ready, other_ready, outcome):
            try:
                await asyncio.wait_for(first.acquire(), 1.5)
            except asyncio.TimeoutError:
                outcome["deadlocked"] = True
                return
            try:
                my_ready.set()
                try:
                    await asyncio.wait_for(other_ready.wait(), 0.2)
                except asyncio.TimeoutError:
                    pass
                try:
                    await asyncio.wait_for(second.acquire(), 1.5)
                except asyncio.TimeoutError:
                    outcome["deadlocked"] = True
                    return
                try:
                    outcome["completed"] += 1
                finally:
                    second.release()
            finally:
                first.release()

        async def scenario(runtime):
            lock_a = AioLock(runtime=runtime, name="A")
            lock_b = AioLock(runtime=runtime, name="B")
            outcome = {"deadlocked": False, "completed": 0}
            ready = [asyncio.Event(), asyncio.Event()]
            await asyncio.gather(
                update(lock_a, lock_b, ready[0], ready[1], outcome),
                update(lock_b, lock_a, ready[1], ready[0], outcome),
            )
            return outcome

        runtime = _make_runtime(history=history)
        first = asyncio.run(scenario(runtime))
        runtime.dimmunix.stop()
        assert first["deadlocked"]
        assert len(history) == 1  # one two-task cycle, one signature

        runtime = _make_runtime(history=history)
        second = asyncio.run(scenario(runtime))
        runtime.dimmunix.stop()
        assert not second["deadlocked"]
        assert second["completed"] == 2

    def test_contended_handover_is_fifo(self):
        runtime = _make_runtime(start=False)
        order = []

        async def main():
            lock = AioLock(runtime=runtime)

            async def worker(tag):
                async with lock:
                    order.append(tag)
                    await asyncio.sleep(0)

            await asyncio.gather(*(worker(i) for i in range(5)))

        asyncio.run(main())
        assert sorted(order) == list(range(5))

    def test_acquire_timeout_expires(self):
        runtime = _make_runtime(start=False)

        async def main():
            lock = AioLock(runtime=runtime)
            await lock.acquire()

            async def contender():
                assert not await lock.acquire(timeout=0.05)

            await asyncio.gather(contender())
            lock.release()
            assert await lock.acquire(timeout=0.05)
            lock.release()

        asyncio.run(main())

    def test_usage_outside_task_raises(self):
        runtime = _make_runtime(start=False)
        with pytest.raises(InstrumentationError):
            runtime.current_task_id()


class TestAioSemaphoreAndCondition:
    def test_semaphore_counts_and_timeout(self):
        runtime = _make_runtime(start=False)

        async def main():
            semaphore = AioSemaphore(2, runtime=runtime)
            assert await semaphore.acquire()
            assert not semaphore.locked()
            assert await semaphore.acquire()
            assert semaphore.locked()
            assert not await semaphore.acquire(timeout=0.05)
            semaphore.release()
            assert await semaphore.acquire(timeout=0.5)
            semaphore.release()
            semaphore.release()

        asyncio.run(main())

    def test_semaphore_async_with_under_contention(self):
        runtime = _make_runtime(start=False)
        peak = {"now": 0, "max": 0}

        async def main():
            semaphore = AioSemaphore(2, runtime=runtime)

            async def worker():
                async with semaphore:
                    peak["now"] += 1
                    peak["max"] = max(peak["max"], peak["now"])
                    await asyncio.sleep(0)
                    peak["now"] -= 1

            await asyncio.gather(*(worker() for _ in range(6)))

        asyncio.run(main())
        assert peak["max"] <= 2

    def test_condition_wait_notify(self):
        runtime = _make_runtime(start=False)
        results = []

        async def main():
            condition = AioCondition(runtime=runtime)

            async def waiter():
                async with condition:
                    await condition.wait_for(lambda: bool(results))
                    results.append("woke")

            async def notifier():
                await asyncio.sleep(0.01)
                async with condition:
                    results.append("go")
                    condition.notify_all()

            await asyncio.gather(waiter(), notifier())

        asyncio.run(main())
        assert results == ["go", "woke"]

    def test_condition_wait_requires_lock(self):
        runtime = _make_runtime(start=False)

        async def main():
            condition = AioCondition(runtime=runtime)
            with pytest.raises(RuntimeError):
                await condition.wait()

        asyncio.run(main())

    def test_condition_rejects_native_lock(self):
        runtime = _make_runtime(start=False)
        with pytest.raises(InstrumentationError):
            AioCondition(lock=raio._original_lock(), runtime=runtime)

    def test_semaphore_release_by_non_holder_keeps_engine_consistent(self):
        """A release from another task transfers the recorded hold (like
        AioLock.release): later acquires by other tasks must not trip the
        engine's single-holder bookkeeping, and unpaired extra releases
        only return permits."""
        runtime = _make_runtime(start=False)

        async def main():
            semaphore = AioSemaphore(1, runtime=runtime)
            await semaphore.acquire()          # task A holds (engine hold A)

            async def non_holder_release():
                semaphore.release()            # transfers A's hold

            await asyncio.gather(non_holder_release())
            assert not semaphore.locked()

            async def other_acquirer():
                assert await semaphore.acquire(timeout=1.0)
                semaphore.release()

            await asyncio.gather(other_acquirer())
            semaphore.release()                # A's unpaired release: permit only

            async def prober():
                assert await semaphore.acquire(timeout=1.0)
                semaphore.release()

            await asyncio.gather(prober())

        asyncio.run(main())


class TestAsyncioImmunity:
    def test_run_twice_immunity(self):
        """Run 1 deadlocks the loop and learns; run 2 is immune."""
        history = History(path=None, autosave=False)

        runtime = _make_runtime(history=history)
        first = asyncio.run(_inversion(runtime))
        runtime.dimmunix.stop()
        assert first["deadlocked"]
        assert len(history) >= 1

        runtime = _make_runtime(history=history)
        second = asyncio.run(_inversion(runtime))
        report = runtime.dimmunix.report()
        runtime.dimmunix.stop()
        assert not second["deadlocked"]
        assert second["completed"] == 2
        assert report["stats"]["yield_decisions"] >= 1

    def test_yield_bound_expiry_aborts_the_avoidance(self):
        """With a short yield bound (section 5.7) a parked task gives up
        avoiding instead of starving; the abort is counted."""
        history = History(path=None, autosave=False)
        runtime = _make_runtime(history=history)
        assert asyncio.run(_inversion(runtime))["deadlocked"]
        runtime.dimmunix.stop()

        runtime = _make_runtime(history=history, yield_timeout=0.05)
        asyncio.run(_inversion(runtime))
        stats = runtime.dimmunix.stats
        runtime.dimmunix.stop()
        assert stats.yield_decisions >= 1
        assert stats.aborted_yields >= 1

    def test_two_event_loops_sequential_share_immunity(self):
        """A signature learned on one event loop protects the next loop —
        the runtime survives loop teardown (fresh loop, fresh tasks)."""
        history = History(path=None, autosave=False)
        runtime = _make_runtime(history=history)
        try:
            first = asyncio.run(_inversion(runtime))   # loop 1: learn
            second = asyncio.run(_inversion(runtime))  # loop 2: immune
        finally:
            runtime.dimmunix.stop()
        assert first["deadlocked"]
        assert not second["deadlocked"]
        assert second["completed"] == 2

    def test_two_event_loops_concurrently_in_one_process(self):
        """Two loops in two threads share one runtime without cross-talk."""
        runtime = _make_runtime()
        outcomes = {}
        errors = []

        def loop_thread(tag: str) -> None:
            async def independent():
                lock_x = AioLock(runtime=runtime, name=f"{tag}-x")
                lock_y = AioLock(runtime=runtime, name=f"{tag}-y")
                done = 0
                for _ in range(25):
                    async with lock_x:
                        async with lock_y:
                            done += 1
                return done

            try:
                outcomes[tag] = asyncio.run(independent())
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append((tag, exc))

        threads = [threading.Thread(target=loop_thread, args=(f"loop{i}",))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        runtime.dimmunix.stop()
        assert not errors
        assert outcomes == {"loop0": 25, "loop1": 25}


class TestCancellation:
    def test_cancel_while_parked_rolls_back_and_frees_locks(self):
        """Cancelling a task parked by a YIELD decision must roll the
        pending request back and leave the locks acquirable."""
        history = History(path=None, autosave=False)
        runtime = _make_runtime(history=history)
        first = asyncio.run(_inversion(runtime))  # learn the signature
        runtime.dimmunix.stop()
        assert first["deadlocked"] and len(history) >= 1

        runtime = _make_runtime(history=history)
        dimmunix = runtime.dimmunix
        cancelled = {"count": 0}

        async def main():
            lock_a = AioLock(runtime=runtime, name="A")
            lock_b = AioLock(runtime=runtime, name="B")
            outcome = {"deadlocked": False, "completed": 0}
            ready = [asyncio.Event(), asyncio.Event()]
            tasks = [
                asyncio.ensure_future(
                    _update(lock_a, lock_b, ready[0], ready[1], outcome)),
                asyncio.ensure_future(
                    update2(lock_b, lock_a, ready[1], ready[0], outcome)),
            ]
            # Wait for the avoidance to park one of the tasks...
            for _ in range(200):
                if dimmunix.stats.yield_decisions >= 1:
                    break
                await asyncio.sleep(0.005)
            else:  # pragma: no cover - diagnostic
                raise AssertionError("no avoidance yield was observed")
            # ...then cancel both (the parked one is cancelled mid-park).
            for task in tasks:
                task.cancel()
            results = await asyncio.gather(*tasks, return_exceptions=True)
            cancelled["count"] = sum(
                1 for r in results if isinstance(r, asyncio.CancelledError))

            # The engine must have rolled everything back: a fresh task
            # can take both locks immediately.
            async def prober():
                assert await lock_a.acquire(timeout=1.0)
                assert await lock_b.acquire(timeout=1.0)
                lock_b.release()
                lock_a.release()

            await asyncio.wait_for(prober(), 2.0)

        asyncio.run(main())
        runtime.dimmunix.stop()
        assert cancelled["count"] >= 1

    def test_parker_cancellation_direct(self):
        """Cancelling a task awaiting ``park_async`` propagates cleanly."""
        runtime = _make_runtime(start=False)
        parker = runtime.parker

        async def main():
            task_id_box = {}

            async def sleeper():
                task_id = runtime.current_task_id()
                task_id_box["id"] = task_id
                parker.prepare(task_id)
                await parker.park_async(task_id, None)

            task = asyncio.ensure_future(sleeper())
            await asyncio.sleep(0.01)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            # A later wake for the dead task must be a harmless no-op.
            parker._wake(task_id_box["id"])
            await asyncio.sleep(0)

        asyncio.run(main())

    def test_parked_task_woken_by_release_from_other_task(self):
        """The wake path through the waker registry un-parks a live task."""
        runtime = _make_runtime(start=False)
        parker = runtime.parker

        async def main():
            woken = {}

            async def sleeper():
                task_id = runtime.current_task_id()
                parker.prepare(task_id)
                woken["result"] = await parker.park_async(task_id, 1.0)
                return task_id

            task = asyncio.ensure_future(sleeper())
            await asyncio.sleep(0.01)
            # Wake through the registry, as RuntimeCore.release would.
            runtime.dimmunix.wake([1])
            await task
            assert woken["result"] is True

        asyncio.run(main())


class TestMonkeyPatching:
    def test_install_uninstall_roundtrip(self):
        runtime = raio.install_asyncio(
            Dimmunix(config=DimmunixConfig.for_testing()))
        try:
            assert raio.asyncio_installed()
            assert isinstance(asyncio.Lock(), AioLock)
            assert isinstance(asyncio.Semaphore(3), AioSemaphore)
            assert isinstance(asyncio.Condition(), AioCondition)

            async def main():
                lock = asyncio.Lock()
                async with lock:
                    assert lock.locked()

            asyncio.run(main())
            with pytest.raises(InstrumentationError):
                raio.install_asyncio()
        finally:
            raio.uninstall_asyncio()
        assert not raio.asyncio_installed()
        assert asyncio.Lock is raio._original_lock
        assert isinstance(asyncio.Lock(), raio._original_lock)
        assert runtime.dimmunix is not None

    def test_patched_asyncio_context_manager(self):
        with raio.patched_asyncio(config=DimmunixConfig.for_testing()) as runtime:
            assert raio.asyncio_installed()
            assert runtime.dimmunix.running
        assert not raio.asyncio_installed()

    def test_immunize_asyncio_one_call(self, tmp_path):
        history_path = str(tmp_path / "aio.history")
        runtime = raio.immunize_asyncio(history_path=history_path)
        try:
            assert raio.asyncio_installed()
            assert runtime.dimmunix.running
            assert runtime.config.history_path == history_path

            async def main():
                lock = asyncio.Lock()
                async with lock:
                    pass

            asyncio.run(main())
        finally:
            runtime.dimmunix.stop()
            raio.uninstall_asyncio()


class TestTaskRegistry:
    def test_task_ids_are_stable_within_and_distinct_across_tasks(self):
        runtime = _make_runtime(start=False)
        seen = {}

        async def main():
            async def worker(tag):
                first = runtime.current_task_id()
                await asyncio.sleep(0)
                assert runtime.current_task_id() == first
                seen[tag] = first

            await asyncio.gather(worker("a"), worker("b"))

        asyncio.run(main())
        assert seen["a"] != seen["b"]

    def test_finished_tasks_are_forgotten(self):
        runtime = _make_runtime(start=False)

        async def main():
            async def worker():
                return runtime.current_task_id()

            task_id = await asyncio.ensure_future(worker())
            await asyncio.sleep(0)  # let the done callback run
            return task_id

        task_id = asyncio.run(main())
        assert task_id not in runtime.tasks._ids.values()
        assert task_id not in runtime.tasks._names
        assert task_id not in runtime.parker._futures
