"""Unit tests for the avoidance engine (GO/YIELD decisions)."""

from __future__ import annotations

import pytest

from repro.core.avoidance import (AvoidanceEngine, Decision, MODE_INSTRUMENTATION_ONLY,
                                  MODE_UPDATES_ONLY)
from repro.core.callstack import CallStack
from repro.core.config import DimmunixConfig
from repro.core.errors import AvoidanceError
from repro.core.events import EventType
from repro.core.history import History
from repro.core.signature import Signature


def stack(*labels):
    return CallStack.from_labels(list(labels))


#: Stacks of the paper's section 4 example: update(A, B) vs update(B, A).
S1 = stack("lock:4", "update:1", "main:0")   # called update() from s1
S2 = stack("lock:4", "update:2", "main:0")   # called update() from s2


def paper_signature() -> Signature:
    """A fresh copy of the section 4 signature (signatures carry mutable counters)."""
    return Signature([stack("lock:4", "update:1"), stack("lock:4", "update:2")],
                     matching_depth=2)


#: Immutable reference copy used only for equality assertions.
PAPER_SIGNATURE = paper_signature()


@pytest.fixture
def engine():
    history = History(path=None, autosave=False)
    return AvoidanceEngine(history, DimmunixConfig.for_testing())


@pytest.fixture
def immune_engine():
    history = History(path=None, autosave=False)
    history.add(paper_signature())
    return AvoidanceEngine(history, DimmunixConfig.for_testing())


class TestEmptyHistory:
    def test_requests_are_granted(self, engine):
        outcome = engine.request(1, 10, S1)
        assert outcome.decision is Decision.GO

    def test_acquire_release_cycle(self, engine):
        engine.request(1, 10, S1)
        engine.acquired(1, 10, S1)
        assert engine.cache.holder_of(10) == 1
        woken = engine.release(1, 10)
        assert woken == []
        assert engine.cache.holder_of(10) is None

    def test_release_without_hold_raises(self, engine):
        with pytest.raises(AvoidanceError):
            engine.release(1, 10)

    def test_events_are_emitted_in_order(self, engine):
        # No REQUEST event on the granted fast path: the ALLOW that the
        # grant publishes supersedes it in the RAG, so the engine skips
        # the redundant emit (and the monitor the redundant apply).
        engine.request(1, 10, S1)
        engine.acquired(1, 10, S1)
        engine.release(1, 10)
        types = [event.type for event in engine.events.drain()]
        assert types == [EventType.ALLOW, EventType.ACQUIRED,
                         EventType.RELEASE]

    def test_stats_counters(self, engine):
        engine.request(1, 10, S1)
        engine.acquired(1, 10, S1)
        engine.release(1, 10)
        snap = engine.stats.snapshot()
        assert snap["requests"] == 1
        assert snap["go_decisions"] == 1
        assert snap["acquisitions"] == 1
        assert snap["releases"] == 1


class TestSignatureAvoidance:
    def test_paper_example_yields_second_thread(self, immune_engine):
        engine = immune_engine
        # Thread 1 takes B via the s2 path.
        assert engine.request(1, 2, S2).is_go
        engine.acquired(1, 2, S2)
        # Thread 2 now attempts A via the s1 path: this would instantiate
        # the signature, so it must yield.
        outcome = engine.request(2, 1, S1)
        assert outcome.is_yield
        assert outcome.signature == PAPER_SIGNATURE
        assert outcome.causes and outcome.causes[0][0] == 1

    def test_non_dangerous_path_is_not_serialized(self, immune_engine):
        engine = immune_engine
        # Both threads take the same path (s1): the pattern {S1, S1} is not
        # in the history, so no yield happens (finer grain than gate locks).
        assert engine.request(1, 1, S1).is_go
        engine.acquired(1, 1, S1)
        assert engine.request(2, 2, S1).is_go

    def test_yield_then_release_wakes_and_allows(self, immune_engine):
        engine = immune_engine
        engine.request(1, 2, S2)
        engine.acquired(1, 2, S2)
        assert engine.request(2, 1, S1).is_yield
        assert engine.yielding_threads() == [2]
        woken = engine.release(1, 2)
        assert woken == [2]
        # After the cause dissolved, the retry is granted.
        assert engine.request(2, 1, S1).is_go

    def test_same_thread_does_not_match_itself(self, immune_engine):
        engine = immune_engine
        engine.request(1, 2, S2)
        engine.acquired(1, 2, S2)
        # The same thread asking for the other lock is not a deadlock risk.
        assert engine.request(1, 1, S1).is_go

    def test_distinct_locks_required(self, immune_engine):
        engine = immune_engine
        engine.request(1, 2, S2)
        engine.acquired(1, 2, S2)
        # Thread 2 requests the very same lock: instance needs distinct locks.
        assert engine.request(2, 2, S1).is_go

    def test_disabled_signature_is_ignored(self, immune_engine):
        engine = immune_engine
        engine.history.disable(PAPER_SIGNATURE.fingerprint)
        engine.request(1, 2, S2)
        engine.acquired(1, 2, S2)
        assert engine.request(2, 1, S1).is_go

    def test_avoidance_counter_increments(self, immune_engine):
        engine = immune_engine
        engine.request(1, 2, S2)
        engine.acquired(1, 2, S2)
        engine.request(2, 1, S1)
        stored = engine.history.get(PAPER_SIGNATURE.fingerprint)
        assert stored.avoidance_count == 1

    def test_matching_respects_depth(self):
        history = History(path=None, autosave=False)
        shallow = Signature([stack("lock:4"), stack("lock:4")], matching_depth=1)
        history.add(shallow)
        engine = AvoidanceEngine(history, DimmunixConfig.for_testing())
        engine.request(1, 2, stack("lock:4", "other:9"))
        engine.acquired(1, 2, stack("lock:4", "other:9"))
        # Depth 1 matches any path ending in lock:4 -> yields.
        assert engine.request(2, 1, stack("lock:4", "different:3")).is_yield


class TestYieldManagement:
    def test_abort_yield_forces_next_go(self, immune_engine):
        engine = immune_engine
        engine.request(1, 2, S2)
        engine.acquired(1, 2, S2)
        assert engine.request(2, 1, S1).is_yield
        signature = engine.abort_yield(2)
        assert signature == PAPER_SIGNATURE
        assert signature.abort_count == 1
        assert engine.request(2, 1, S1).is_go

    def test_abort_auto_disables_after_threshold(self):
        history = History(path=None, autosave=False)
        history.add(paper_signature())
        config = DimmunixConfig.for_testing(auto_disable_abort_threshold=2)
        engine = AvoidanceEngine(history, config)
        engine.request(1, 2, S2)
        engine.acquired(1, 2, S2)
        for _ in range(2):
            assert engine.request(2, 1, S1).is_yield
            engine.abort_yield(2)
            # After the abort the thread proceeds: forced GO, acquire, release.
            assert engine.request(2, 1, S1).is_go
            engine.acquired(2, 1, S1)
            engine.release(2, 1)
        stored = history.get(PAPER_SIGNATURE.fingerprint)
        assert stored.disabled

    def test_force_go(self, immune_engine):
        engine = immune_engine
        engine.request(1, 2, S2)
        engine.acquired(1, 2, S2)
        engine.request(2, 1, S1)
        engine.force_go(2)
        assert engine.request(2, 1, S1).is_go

    def test_last_avoided_signature(self, immune_engine):
        engine = immune_engine
        assert engine.last_avoided_signature() is None
        engine.request(1, 2, S2)
        engine.acquired(1, 2, S2)
        engine.request(2, 1, S1)
        assert engine.last_avoided_signature() == PAPER_SIGNATURE


class TestBypasses:
    def test_detection_only_never_yields(self):
        history = History(path=None, autosave=False)
        history.add(paper_signature())
        engine = AvoidanceEngine(history,
                                 DimmunixConfig.for_testing(detection_only=True))
        engine.request(1, 2, S2)
        engine.acquired(1, 2, S2)
        assert engine.request(2, 1, S1).is_go

    def test_reentrant_request_bypasses_matching(self, immune_engine):
        engine = immune_engine
        engine.request(1, 2, S2)
        engine.acquired(1, 2, S2)
        engine.request(2, 1, S1)  # thread 2 yields
        # Thread 1 re-acquiring lock 2 reentrantly is always allowed.
        assert engine.request(1, 2, S1).is_go

    def test_external_synchronization_bypass(self):
        history = History(path=None, autosave=False)
        history.add(paper_signature())
        config = DimmunixConfig.for_testing(
            external_synchronization=("lock",))
        engine = AvoidanceEngine(history, config)
        engine.request(1, 2, S2)
        engine.acquired(1, 2, S2)
        assert engine.request(2, 1, S1).is_go

    def test_updates_only_mode_never_matches(self):
        history = History(path=None, autosave=False)
        history.add(paper_signature())
        engine = AvoidanceEngine(history, DimmunixConfig.for_testing(),
                                 mode=MODE_UPDATES_ONLY)
        engine.request(1, 2, S2)
        engine.acquired(1, 2, S2)
        assert engine.request(2, 1, S1).is_go
        assert engine.cache.holder_of(2) == 1

    def test_instrumentation_only_mode_does_nothing(self):
        history = History(path=None, autosave=False)
        engine = AvoidanceEngine(history, DimmunixConfig.for_testing(),
                                 mode=MODE_INSTRUMENTATION_ONLY)
        assert engine.request(1, 2, S2).is_go
        engine.acquired(1, 2, S2)
        assert engine.cache.holder_of(2) is None
        assert len(engine.events) == 0


class TestCancel:
    def test_cancel_removes_allow_edge(self, engine):
        engine.request(1, 10, S1)
        engine.cancel(1, 10)
        assert engine.cache.waiting_of(1) is None

    def test_cancelled_waiter_no_longer_matches(self, immune_engine):
        engine = immune_engine
        engine.request(1, 2, S2)   # allowed to wait (not yet acquired)
        engine.cancel(1, 2)        # trylock gave up
        # Without the allow edge there is no instance, so thread 2 gets GO.
        assert engine.request(2, 1, S1).is_go

    def test_allow_edge_alone_can_instantiate(self, immune_engine):
        engine = immune_engine
        engine.request(1, 2, S2)   # thread 1 allowed to wait for lock 2
        # Even before thread 1 acquires, the commitment counts (allow edge).
        assert engine.request(2, 1, S1).is_yield


class TestExploredImmunity:
    """The section 4 scenario checked over *all* bounded interleavings.

    The unit tests above pin the engine's GO/YIELD decisions on
    hand-picked event orders; these close the loop by quantifying over
    the schedule space of the full simulated scenario: without avoidance
    the deadlock manifests in some interleaving, and with the paper
    signature in the history it manifests in none.
    """

    def _scenario(self, backend):
        from repro.sim import build_two_lock_inversion
        return build_two_lock_inversion(backend)

    def test_paper_deadlock_manifests_without_avoidance(self):
        from repro.sim import Explorer, NullBackend
        result = Explorer(lambda: self._scenario(NullBackend()),
                          name="paper-section4").explore()
        assert result.exhausted
        assert result.deadlock_count >= 1
        assert result.completed >= 1

    def test_paper_signature_immunizes_every_interleaving(self):
        from repro.sim import DimmunixBackend, Explorer

        # Learn the signature once (any deadlocking run archives it) ...
        learner = DimmunixBackend(config=DimmunixConfig.for_testing())
        self._scenario(learner).run()
        if len(learner.history) == 0:
            # The sampled schedule dodged the deadlock; force one via DFS.
            explorer = Explorer(lambda: self._scenario(
                DimmunixBackend(config=DimmunixConfig.for_testing(),
                                history=learner.history)))
            explorer.explore(stop_on_first_deadlock=True)
        assert len(learner.history) >= 1

        # ... then no bounded interleaving re-manifests it.
        prototype = DimmunixBackend(config=DimmunixConfig.for_testing(),
                                    history=learner.history)
        immune = Explorer(lambda: self._scenario(prototype.fork()),
                          name="paper-section4-immune").explore()
        assert immune.exhausted
        assert immune.deadlock_count == 0
        assert immune.completed == immune.runs

    def test_disabled_signature_restores_vulnerability_in_exploration(self):
        from repro.sim import DimmunixBackend, Explorer
        learner = DimmunixBackend(config=DimmunixConfig.for_testing())
        Explorer(lambda: self._scenario(
            DimmunixBackend(config=DimmunixConfig.for_testing(),
                            history=learner.history))).explore(
                                stop_on_first_deadlock=True)
        assert len(learner.history) >= 1
        for signature in learner.history.signatures():
            learner.history.disable(signature.fingerprint)
        prototype = DimmunixBackend(config=DimmunixConfig.for_testing(),
                                    history=learner.history)
        result = Explorer(lambda: self._scenario(prototype.fork())).explore()
        assert result.deadlock_count >= 1


class TestThreeThreadSignature:
    def test_three_stack_signature_requires_three_bindings(self):
        sig = Signature([stack("a:1"), stack("b:2"), stack("c:3")], matching_depth=1)
        history = History(path=None, autosave=False)
        history.add(sig)
        engine = AvoidanceEngine(history, DimmunixConfig.for_testing())
        engine.request(1, 101, stack("a:1", "x:0"))
        engine.acquired(1, 101, stack("a:1", "x:0"))
        # Only one of the other two stacks is present: no instance yet.
        assert engine.request(2, 102, stack("b:2", "y:0")).is_go
        engine.acquired(2, 102, stack("b:2", "y:0"))
        # Now the third binding would complete the cover -> yield.
        assert engine.request(3, 103, stack("c:3", "z:0")).is_yield
