"""Event-bus publication races: hold-back, gap skip, retirement, order.

The bus allocates a sequence number and appends the record as two
separate steps; everything here attacks that window and the ring
life-cycle around it.
"""

from __future__ import annotations

import random
import threading
import time

from repro.core.callstack import CallStack
from repro.core.events import EV_ACQUIRED, EV_RELEASE, EV_REQUEST, EventBus

from .harness import (GatedSeq, assert_seq_order, preemption_pressure,
                      run_threads)

STACK = CallStack.from_labels(["f:1", "g:2"])


class TestHoldBack:
    """Deterministic: a later-seq record must wait for an earlier in-flight one."""

    def test_drain_holds_back_record_behind_inflight_emit(self):
        bus = EventBus(gap_timeout=30.0)
        gate = GatedSeq(bus._next_seq, trap="trapped")
        bus._next_seq = gate

        trapped = threading.Thread(
            target=lambda: bus.emit(EV_REQUEST, 1, 10, STACK),
            name="trapped-emitter")
        trapped.start()
        assert gate.allocated.wait(10.0)
        # Seq 1 is allocated but its record has NOT been appended.  Now a
        # second thread completes a full emit with seq 2.
        second = threading.Thread(
            target=lambda: bus.emit(EV_ACQUIRED, 2, 10, STACK),
            name="second-emitter")
        second.start()
        second.join(10.0)

        # Pre-fix code returned seq 2 here, breaking the cross-drain total
        # order; the fixed drain must hold it back behind the gap at seq 1.
        assert bus.drain_raw() == []
        assert bus.drain_raw() == []

        gate.release.set()
        trapped.join(10.0)
        records = bus.drain_raw()
        assert [record[0] for record in records] == [1, 2]
        assert [record[1] for record in records] == [EV_REQUEST, EV_ACQUIRED]
        assert bus.seq_gaps_skipped == 0
        assert bus.stragglers == 0

    def test_gap_timeout_skips_dead_emitter_then_counts_straggler(self):
        bus = EventBus(gap_timeout=0.02)
        gate = GatedSeq(bus._next_seq, trap="trapped")
        bus._next_seq = gate

        trapped = threading.Thread(
            target=lambda: bus.emit(EV_REQUEST, 1, 10, STACK),
            name="trapped-emitter")
        trapped.start()
        assert gate.allocated.wait(10.0)
        bus.emit(EV_ACQUIRED, 2, 10, STACK)  # seq 2, complete

        # Young gap: held back.
        assert bus.drain_raw() == []
        # Let the gap outlive the timeout: the drain gives seq 1 up for
        # lost instead of wedging the monitor forever.
        time.sleep(0.04)
        records = bus.drain_raw()
        assert [record[0] for record in records] == [2]
        assert bus.seq_gaps_skipped == 1

        # The not-so-dead emitter completes after all: its record is
        # released immediately, out of order, and counted as a straggler.
        gate.release.set()
        trapped.join(10.0)
        late = bus.drain_raw()
        assert [record[0] for record in late] == [1]
        assert bus.stragglers == 1

    def test_clear_resyncs_past_discarded_seqs(self):
        bus = EventBus(gap_timeout=30.0)
        for lock_id in range(5):
            bus.emit(EV_REQUEST, 1, lock_id, STACK)
        bus.clear()
        # Seqs 1-5 are gone for good; the next drain must re-anchor on the
        # first record it sees instead of stalling on the discarded seqs
        # until the gap timeout.
        bus.emit(EV_ACQUIRED, 1, 99, STACK)
        records = bus.drain_raw()
        assert [record[3] for record in records] == [99]
        assert bus.seq_gaps_skipped == 0


class TestRetirementChurn:
    """Stress: short-lived producer threads must never lose records.

    This schedule found the ring-retirement TOCTOU in this PR's own
    first draft: checking a ring's emptiness *before* its owner's
    liveness let a producer append a final burst and exit inside the
    liveness check's suspension window, after which the consumer
    deleted the ring with the burst still inside.
    """

    def test_no_loss_under_producer_churn(self):
        producers, per_thread, rounds = 4, 250, 6
        for seed in range(rounds):
            bus = EventBus(ring_capacity=per_thread + 16)
            rng = random.Random(seed)
            start = threading.Barrier(producers + 1)
            done = threading.Event()

            def produce(thread_id):
                start.wait()
                for index in range(per_thread):
                    bus.emit(EV_REQUEST, thread_id, index, STACK)

            batches = []

            def consume():
                start.wait()
                while not done.is_set() or bus:
                    batches.append(bus.drain_raw(limit=rng.randrange(1, 120)))
                batches.append(bus.drain_raw())

            with preemption_pressure():
                pool = [threading.Thread(target=produce, args=(tid,))
                        for tid in range(1, producers + 1)]
                consumer = threading.Thread(target=consume)
                consumer.start()
                for thread in pool:
                    thread.start()
                for thread in pool:
                    thread.join()
                done.set()
                consumer.join()

            assert_seq_order(batches, expect_total=producers * per_thread)
            assert bus.dropped == 0, f"seed {seed}"
            assert bus.seq_gaps_skipped == 0, f"seed {seed}"
            # Producers are dead and drained: their rings must retire,
            # with the lifetime counters surviving the retirement.
            bus.drain_raw()
            assert bus.ring_count == 0, f"seed {seed}"
            assert bus.total_enqueued == producers * per_thread, f"seed {seed}"
            assert bus.total_drained == producers * per_thread, f"seed {seed}"


class TestEmitStorm:
    """Stress: concurrent emitters + limit-cut drains keep the total order."""

    def test_total_order_across_drains_under_pressure(self):
        producers, per_thread = 4, 800
        bus = EventBus(ring_capacity=per_thread + 16)
        rng = random.Random(0xD1A6)
        done = threading.Event()
        batches = []

        def produce(thread_id):
            for index in range(per_thread):
                code = EV_ACQUIRED if index % 2 else EV_RELEASE
                bus.emit(code, thread_id, index % 7, STACK)

        def consume():
            while not done.is_set() or bus:
                batches.append(bus.drain_raw(limit=rng.randrange(1, 90)))
            batches.append(bus.drain_raw())

        with preemption_pressure():
            consumer = threading.Thread(target=consume)
            consumer.start()
            run_threads([lambda tid=tid: produce(tid)
                         for tid in range(1, producers + 1)])
            done.set()
            consumer.join(30.0)

        assert not consumer.is_alive()
        assert_seq_order(batches, expect_total=producers * per_thread)
        assert bus.seq_gaps_skipped == 0
        assert bus.stragglers == 0
