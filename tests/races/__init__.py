"""Seeded interleaving-stress harness for the lock-free hot path.

Each module in this package targets one lock-free structure and checks
one invariant that a publication race would break:

* ``test_event_bus_races`` — the event bus's cross-drain total order,
  hold-back of in-flight emissions, gap-timeout safety valve, and
  dead-ring retirement (zero loss under thread churn);
* ``test_stats_races`` — epoch-based reset never resurrects or
  half-counts an in-flight bump;
* ``test_sigindex_races`` — the COW top-filter/bucket publication order
  only ever produces benign false negatives, never false positives or
  torn reads;
* ``test_rag_consistency`` — the end-to-end §5.2 oracle: genuine lock
  hand-offs replayed through bus + RAG never show a release/acquire
  inversion (``rag.order_violations == 0``).

The tests run unchanged under GIL and free-threaded builds
(``PYTHON_GIL=0``); deterministic cases use barrier-aligned choreography
(:mod:`tests.races.harness`), stress cases crank the interpreter switch
interval to force preemption at every bytecode boundary.  Reverting the
PR-7 fixes makes these tests fail — that is their job.
"""
