"""SignatureIndex COW publication races: benign false negatives only.

``candidates()`` reads the top-frame filter and the buckets lock-free
while a writer churns signatures in and out.  The publication contract
(filter before buckets on insert, buckets before filter on remove) makes
every interleaving a *false negative* at worst; a publication-order bug
shows up here as a reader crash (torn structure), a false positive
(matching a signature that was never indexed), or a filter that drifts
out of lock-step with the buckets.
"""

from __future__ import annotations

import threading

from repro.core.callstack import CallStack
from repro.core.history import History
from repro.core.sigindex import SignatureIndex
from repro.core.signature import Signature

from .harness import preemption_pressure, run_threads


def stack(*labels):
    return CallStack.from_labels(list(labels))


def make_signature(seed: int) -> Signature:
    return Signature([stack(f"lock:{seed}", f"caller:{seed}", "main:0"),
                      stack(f"lock:{seed + 1000}", f"caller:{seed}", "main:0")],
                     matching_depth=2)


class TestReaderWriterStorm:
    def test_probes_race_churn_without_false_positives(self):
        history = History(path=None, autosave=False)
        index = SignatureIndex(history)
        churn_rounds, reader_probes = 150, 4000
        signatures = [make_signature(seed) for seed in range(8)]
        valid_fingerprints = {sig.fingerprint for sig in signatures}
        # One permanently indexed signature: readers probing it while only
        # OTHER signatures churn must always find it (no collateral
        # false negative from unrelated writes).
        anchor = make_signature(9999)
        history.add(anchor)
        done = threading.Event()
        failures = []

        def churner():
            try:
                for round_index in range(churn_rounds):
                    sig = signatures[round_index % len(signatures)]
                    history.add(sig)
                    history.remove(sig.fingerprint)
            finally:
                done.set()

        def reader(offset):
            probes = 0
            while not done.is_set() or probes < reader_probes // 4:
                seed = (probes + offset) % 8
                hit = index.candidates(
                    stack(f"lock:{seed}", f"caller:{seed}", "main:0"))
                for found in hit:
                    if found.fingerprint not in valid_fingerprints:
                        failures.append(
                            f"false positive: {found.fingerprint}")
                anchored = index.candidates(
                    stack("lock:9999", "caller:9999", "main:0"))
                if anchor not in anchored:
                    failures.append("anchor signature lost to a reader")
                missed = index.candidates(stack("never:1", "indexed:2"))
                if missed:
                    failures.append(f"phantom match: {missed}")
                probes += 1

        with preemption_pressure():
            run_threads([churner] + [lambda off=off: reader(off)
                                     for off in range(3)])

        assert not failures, failures[:5]
        # Quiescent: the refcounted filter must exactly cover the buckets.
        assert index.filter_consistent()
        # And the index converged to the anchor alone.
        assert index.candidates(
            stack("lock:9999", "caller:9999", "main:0")) == [anchor]
