"""Choreography utilities and invariant oracles for the races harness.

Two styles of test live on top of these helpers:

*Deterministic interleavings* — a ``Gated*`` proxy parks a chosen thread
*inside* a known race window (between a sequence allocation and the ring
append, between a counter read and its write-back) while the test drives
the other side of the race to completion, then releases the parked
thread and asserts the invariant.  These fail on the pre-fix code every
single run, on any build.

*Seeded stress* — many threads hammer the structure with the interpreter
switch interval cranked to its minimum so the scheduler preempts at
bytecode granularity, and an oracle checks a global invariant
afterwards.  These catch whole *classes* of interleaving bugs (they are
how the ring-retirement TOCTOU in this PR's own first draft was found)
at the price of being probabilistic per run; the fixed seeds keep the
schedule pressure reproducible.
"""

from __future__ import annotations

import sys
import sysconfig
import threading
from contextlib import contextmanager
from typing import Callable, List, Sequence, Tuple

#: True when the interpreter was built with PEP 703 ``--disable-gil``.
FREE_THREADED_BUILD = bool(sysconfig.get_config_var("Py_GIL_DISABLED"))


def gil_enabled() -> bool:
    """Is the GIL actually on right now (False only on 3.13t+ with it off)?"""
    checker = getattr(sys, "_is_gil_enabled", None)
    return True if checker is None else bool(checker())


@contextmanager
def preemption_pressure(interval: float = 1e-6):
    """Crank the switch interval so the scheduler preempts constantly.

    On free-threaded builds threads already run concurrently and the
    interval is irrelevant, but setting it is harmless there.
    """
    old = sys.getswitchinterval()
    sys.setswitchinterval(interval)
    try:
        yield
    finally:
        sys.setswitchinterval(old)


def run_threads(thunks: Sequence[Callable[[], None]],
                timeout: float = 30.0) -> None:
    """Run every thunk in its own thread, aligned on a start barrier.

    Joins them all and re-raises the first exception any of them hit
    (a plain ``Thread`` would swallow it and the test would pass
    vacuously).
    """
    barrier = threading.Barrier(len(thunks))
    failures: List[BaseException] = []

    def wrap(thunk):
        def runner():
            barrier.wait()
            try:
                thunk()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                failures.append(exc)
        return runner

    threads = [threading.Thread(target=wrap(thunk), name=f"races-{index}")
               for index, thunk in enumerate(thunks)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout)
        if thread.is_alive():
            raise AssertionError(f"race thread {thread.name} wedged")
    if failures:
        raise failures[0]


class GatedSeq:
    """Seq-allocator proxy that parks one chosen allocation mid-window.

    Installed in place of ``EventBus._next_seq``.  The first allocation
    made by a thread whose name contains ``trap`` returns its number but
    blocks *before* returning control to ``emit`` — i.e. after the seq
    exists, before the record is appended — which is exactly the
    publication window the drain's hold-back must tolerate.  The test
    observes ``allocated`` to know the window is open and sets
    ``release`` to let the emit complete.
    """

    def __init__(self, inner: Callable[[], int], trap: str):
        self._inner = inner
        self._trap = trap
        self._armed = True
        self.allocated = threading.Event()
        self.release = threading.Event()
        self.trapped_seq: int = -1

    def __call__(self) -> int:
        seq = self._inner()
        if self._armed and self._trap in threading.current_thread().name:
            self._armed = False
            self.trapped_seq = seq
            self.allocated.set()
            if not self.release.wait(30.0):
                raise AssertionError("GatedSeq never released")
        return seq


class GatedDict(dict):
    """Counter-dict proxy that parks one chosen ``get`` mid-bump.

    Installed as a stats shard's counts storage.  ``bump`` reads the old
    value with ``get`` and stores ``old + amount`` afterwards; parking
    inside ``get`` holds the bump in exactly the read-modify-write
    window a concurrent ``reset`` races with.
    """

    def __init__(self, *args):
        super().__init__(*args)
        self.entered = threading.Event()
        self.release = threading.Event()
        self._armed = True

    def get(self, key, default=None):
        value = super().get(key, default)
        if self._armed:
            self._armed = False
            self.entered.set()
            if not self.release.wait(30.0):
                raise AssertionError("GatedDict never released")
        return value


def assert_seq_order(batches: Sequence[Sequence[Tuple]],
                     expect_total: int = None) -> None:
    """Seq-gap detector: drained batches form one strictly increasing,
    duplicate-free seq stream across every drain boundary."""
    seqs = [record[0] for batch in batches for record in batch]
    assert seqs == sorted(seqs), "seq order violated across drains"
    assert len(set(seqs)) == len(seqs), "duplicate seq released"
    if expect_total is not None:
        assert len(seqs) == expect_total, (
            f"lost records: released {len(seqs)} of {expect_total}")


def rag_quiescent_consistent(rag) -> List[str]:
    """RAG/history consistency oracle for a fully drained, finished run.

    After every emitter completed balanced acquire/release pairs and the
    consumer applied every record, the graph must show no residue.
    Returns a list of violations (empty = consistent).
    """
    problems = []
    if rag.order_violations:
        problems.append(
            f"{rag.order_violations} release/acquire order violations")
    for thread in rag.threads():
        if thread.holds:
            problems.append(
                f"thread {thread.thread_id} still holds {dict(thread.holds)}")
        if thread.request is not None or thread.allow is not None:
            problems.append(
                f"thread {thread.thread_id} has a dangling request/allow")
    for resource in rag.locks():
        if resource.edges:
            problems.append(
                f"resource {resource.lock_id} still has hold edges")
        if resource.waiters:
            problems.append(
                f"resource {resource.lock_id} still has waiters")
    return problems
