"""EngineStats reset-vs-bump races: epochs must prevent resurrection.

The pre-fix ``reset`` cleared every shard dict in place under the stats
lock while ``bump`` wrote lock-free: a bump that read its old value
before the clear and stored after it resurrected the whole pre-reset
total for that counter.  The epoch scheme discards the old generation
wholesale instead; these tests pin the invariant from both ends.
"""

from __future__ import annotations

import threading

from repro.core.stats import EngineStats

from .harness import GatedDict, preemption_pressure, run_threads


def _install_gated_counts(stats: EngineStats) -> GatedDict:
    """From the calling thread, put a GatedDict behind its own shard.

    Works against both the epoch-based shard objects (``.counts``) and
    the pre-fix plain-dict shards, so the test stays meaningful when the
    fix is reverted for the demonstration run.
    """
    stats.bump("requests", 0)  # force shard creation
    shard = stats._local.shard
    if hasattr(shard, "counts"):
        gated = GatedDict(shard.counts)
        shard.counts = gated
    else:  # pre-fix layout: the shard IS the dict, registered in _shards
        gated = GatedDict(shard)
        stats._local.shard = gated
        stats._shards[stats._shards.index(shard)] = gated
    return gated


class TestDeterministicResurrection:
    def test_reset_never_resurrects_an_inflight_bump(self):
        """Choreography: park a bump inside its read-modify-write window,
        reset while it is parked, release it.  The parked bump belongs to
        the old generation; the post-reset total must not contain any of
        the 500 pre-reset increments (pre-fix code reports 501)."""
        stats = EngineStats()
        gates = {}
        gate_ready = threading.Event()
        resumed = threading.Event()

        def bumper():
            stats.bump("requests", 500)   # pre-reset total to resurrect
            gates["gate"] = _install_gated_counts(stats)
            gate_ready.set()
            stats.bump("requests")        # parks inside counts.get
            resumed.set()

        worker = threading.Thread(target=bumper, name="gated-bumper")
        worker.start()
        # Wait for the worker to be parked mid-bump, then reset.
        assert gate_ready.wait(10.0)
        gate = gates["gate"]
        assert gate.entered.wait(10.0)
        assert stats.requests == 500
        stats.reset()
        assert stats.requests == 0
        gate.release.set()
        assert resumed.wait(10.0)
        worker.join(10.0)
        # The in-flight bump wrote 501 into the *old* generation's dict;
        # a correct reset leaves it there, dead.  It must never surface.
        assert stats.requests <= 1, (
            f"pre-reset total resurrected: requests={stats.requests}")
        # And the next bump lands cleanly in the new generation.
        stats.bump("requests")
        assert 1 <= stats.requests <= 2

    def test_quiescent_reset_zeroes_everything(self):
        stats = EngineStats()
        for name in ("requests", "releases", "acquisitions"):
            stats.bump(name, 7)
        stats.reset()
        assert stats.snapshot() == {name: 0 for name in stats.snapshot()}
        stats.bump("requests")
        assert stats.requests == 1


class TestResetStorm:
    def test_reset_bound_under_concurrent_bumping(self):
        """Stress: W workers bump continuously while the main thread
        resets mid-flight.  Afterwards the aggregate may contain only
        increments issued *after* the reset, plus at most one in-flight
        bump per worker — resurrection of pre-reset totals (the pre-fix
        failure) blows this bound by thousands."""
        workers, bursts, per_burst = 4, 60, 25
        stats = EngineStats()
        progress = [0] * workers
        reset_done = threading.Event()

        def bump_loop(slot):
            for _ in range(bursts):
                for _ in range(per_burst):
                    stats.bump("requests")
                    progress[slot] += 1

        def resetter():
            # Let real contention build, then reset once mid-storm.
            while sum(progress) < (workers * bursts * per_burst) // 3:
                pass
            issued_before = sum(progress)
            stats.reset()
            reset_done.issued_before = issued_before  # type: ignore[attr-defined]
            reset_done.set()

        with preemption_pressure():
            run_threads([lambda slot=slot: bump_loop(slot)
                         for slot in range(workers)] + [resetter])

        assert reset_done.is_set()
        issued_before = reset_done.issued_before  # type: ignore[attr-defined]
        total_issued = sum(progress)
        after = stats.requests
        # progress[] is read racily by the resetter, so allow one burst of
        # slack per worker on top of the one in-flight bump each.
        bound = (total_issued - issued_before) + workers * (per_burst + 1)
        assert after <= bound, (
            f"resurrected pre-reset counts: {after} > {bound} "
            f"(issued_before={issued_before}, total={total_issued})")
