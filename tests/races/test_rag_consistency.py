"""End-to-end §5.2 oracle: bus + RAG never see a release/acquire inversion.

Worker threads perform *genuine* lock hand-offs — a real
``threading.Lock`` serializes them — and emit ACQUIRED/RELEASE records
for each critical section while holding it, exactly as the instrumented
runtimes do.  Because the emissions happen inside the real critical
section, the true event order is release-before-next-acquire for every
hand-off; the paper's §5.2 requires the monitor to apply them in that
order.  A concurrently draining consumer feeds the records through
``RAG.apply_encoded``; ``rag.order_violations`` counts every inversion
the graph had to repair, so the single oracle here is that it stays 0
and the graph is empty once the run quiesces.

Pre-fix, the window between seq allocation and ring append let a drain
publish the next holder's ACQUIRED before the previous holder's RELEASE
had landed, which this test flags within a few hundred hand-offs under
preemption pressure.
"""

from __future__ import annotations

import random
import threading

from repro.core.callstack import CallStack
from repro.core.events import EV_ACQUIRED, EV_RELEASE, EventBus
from repro.core.rag import ResourceAllocationGraph

from .harness import preemption_pressure, rag_quiescent_consistent

STACK = CallStack.from_labels(["worker:1", "section:2"])


class TestReleaseAcquireOrder:
    def test_real_lock_handoffs_apply_in_order(self):
        workers, handoffs_each, resources = 4, 400, 3
        bus = EventBus()
        rag = ResourceAllocationGraph(strict=False)
        real_locks = [threading.Lock() for _ in range(resources)]
        rng = random.Random(0x52A6)
        done = threading.Event()
        drained = []

        def worker(thread_id):
            local_rng = random.Random(thread_id)
            for _ in range(handoffs_each):
                resource_id = local_rng.randrange(resources)
                lock = real_locks[resource_id]
                with lock:
                    # Emit while holding, like the instrumented runtimes:
                    # the next holder's ACQUIRED cannot be *emitted* until
                    # after this RELEASE emission returns.
                    bus.emit(EV_ACQUIRED, thread_id, resource_id, STACK)
                    bus.emit(EV_RELEASE, thread_id, resource_id, STACK)

        def consume():
            while not done.is_set() or bus:
                records = bus.drain_raw(limit=rng.randrange(1, 64))
                if records:
                    rag.apply_encoded(records)
                    drained.append(len(records))

        with preemption_pressure():
            consumer = threading.Thread(target=consume)
            consumer.start()
            pool = [threading.Thread(target=worker, args=(tid,))
                    for tid in range(1, workers + 1)]
            for thread in pool:
                thread.start()
            for thread in pool:
                thread.join()
            done.set()
            consumer.join(30.0)

        assert not consumer.is_alive()
        total = workers * handoffs_each * 2
        assert rag.events_applied == total
        problems = rag_quiescent_consistent(rag)
        assert not problems, problems
        assert bus.seq_gaps_skipped == 0
        assert bus.stragglers == 0
