"""Unit tests for the history-sharing transports (repro.share).

Covers the :class:`HistoryChannel` contract for all three transports —
spec parsing, publish/poll/snapshot dedup, the daemon protocol, the
shared-file log's locking/compaction/generation handling — without
spawning worker processes (the end-to-end multi-process story lives in
``test_share_multiprocess.py``).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core.callstack import CallStack
from repro.core.errors import ShareError
from repro.core.signature import Signature
from repro.share import (FileChannel, HistoryServer, MemoryHub, SocketChannel,
                         make_control, memory_hub, open_channel,
                         parse_share_spec, register_transport,
                         reset_memory_hubs, transports, unregister_transport)


def make_signature(label: str) -> Signature:
    return Signature([CallStack.from_labels([f"{label}:1", "main:0"]),
                      CallStack.from_labels([f"{label}:2", "main:0"])])


# ---------------------------------------------------------------------------
# Spec parsing
# ---------------------------------------------------------------------------


class TestSpecParsing:
    def test_tcp(self):
        assert parse_share_spec("tcp://pool.internal:7341") == (
            "tcp", {"host": "pool.internal", "port": 7341})

    def test_unix(self):
        assert parse_share_spec("unix:///run/app/pool.sock") == (
            "unix", {"path": "/run/app/pool.sock"})

    def test_file(self):
        assert parse_share_spec("file:///shared/pool.sig") == (
            "file", {"path": "/shared/pool.sig"})

    def test_bare_path_is_file(self):
        assert parse_share_spec("/shared/pool.sig") == (
            "file", {"path": "/shared/pool.sig"})

    def test_memory(self):
        assert parse_share_spec("memory://team-a") == (
            "memory", {"name": "team-a"})

    @pytest.mark.parametrize("spec", ["tcp://nohost", "tcp://host:notaport",
                                      "unix://", "file://", "memory://",
                                      "carrier-pigeon://x"])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ShareError):
            parse_share_spec(spec)

    def test_open_channel_passes_instances_through(self):
        channel = MemoryHub("passthrough").channel()
        assert open_channel(channel) is channel

    def test_open_channel_rejects_non_specs(self):
        with pytest.raises(ShareError):
            open_channel(42)

    def test_open_channel_memory_spec_is_process_global(self):
        reset_memory_hubs()
        a = open_channel("memory://shared-hub")
        b = open_channel("memory://shared-hub")
        a.publish(make_signature("global"))
        assert len(b.poll()) == 1


# ---------------------------------------------------------------------------
# Memory hub
# ---------------------------------------------------------------------------


class TestMemoryChannel:
    def test_publish_reaches_other_channels_not_self(self):
        hub = MemoryHub()
        a, b = hub.channel(), hub.channel()
        a.publish(make_signature("m1"))
        assert [s.fingerprint for s in b.poll()] == \
            [make_signature("m1").fingerprint]
        assert a.poll() == []          # own publish is never redelivered
        assert b.poll() == []          # delivery is exactly-once

    def test_hub_deduplicates_by_fingerprint(self):
        hub = MemoryHub()
        a, b, c = hub.channel(), hub.channel(), hub.channel()
        a.publish(make_signature("dup"))
        b.publish(make_signature("dup"))
        assert len(hub) == 1
        assert len(c.poll()) == 1

    def test_snapshot_returns_everything_and_stops_redelivery(self):
        hub = MemoryHub()
        a, b = hub.channel(), hub.channel()
        a.publish(make_signature("s1"))
        a.publish(make_signature("s2"))
        assert len(b.snapshot()) == 2
        assert b.poll() == []

    def test_closed_channel_is_inert(self):
        hub = MemoryHub()
        a, b = hub.channel(), hub.channel()
        a.close()
        a.publish(make_signature("x"))
        assert len(hub) == 0
        assert a.poll() == [] and a.snapshot() == []
        b.publish(make_signature("y"))
        assert b.poll() == []

    def test_named_hubs_are_stable(self):
        reset_memory_hubs()
        assert memory_hub("alpha") is memory_hub("alpha")
        assert memory_hub("alpha") is not memory_hub("beta")


# ---------------------------------------------------------------------------
# Shared-file channel
# ---------------------------------------------------------------------------


class TestFileChannel:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "pool.sig")
        a, b = FileChannel(path), FileChannel(path)
        a.publish(make_signature("f1"))
        got = b.poll()
        assert [s.fingerprint for s in got] == \
            [make_signature("f1").fingerprint]
        assert b.poll() == []
        assert a.poll() == []          # own record filtered by seen-set

    def test_poll_before_any_publish(self, tmp_path):
        channel = FileChannel(str(tmp_path / "absent.sig"))
        assert channel.poll() == []
        assert channel.snapshot() == []

    def test_incremental_offsets(self, tmp_path):
        path = str(tmp_path / "pool.sig")
        a, b = FileChannel(path), FileChannel(path)
        for index in range(5):
            a.publish(make_signature(f"s{index}"))
            assert len(b.poll()) == 1

    def test_corrupt_lines_are_skipped(self, tmp_path):
        path = str(tmp_path / "pool.sig")
        a, b = FileChannel(path), FileChannel(path)
        a.publish(make_signature("good"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write(json.dumps({"unrelated": True}) + "\n")
        a.publish(make_signature("good2"))
        assert len(b.poll()) == 2

    def test_non_share_file_is_refused_outright(self, tmp_path):
        """A foreign file (say, a history file passed as the share spec)
        must be rejected at construction — never appended to."""
        path = str(tmp_path / "other.json")
        original = json.dumps({"format_version": 2, "signatures": []})
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(original)
        with pytest.raises(ShareError):
            FileChannel(path)
        with open(path, "r", encoding="utf-8") as handle:
            assert handle.read() == original  # untouched

    def test_compaction_drops_duplicates_and_readers_survive(self, tmp_path):
        path = str(tmp_path / "pool.sig")
        writer = FileChannel(path)
        reader = FileChannel(path)
        for index in range(4):
            writer.publish(make_signature(f"c{index}"))
        assert len(reader.poll()) == 4
        # Duplicate records from "other processes" (fresh seen-sets).
        for _ in range(3):
            duplicator = FileChannel(path)
            duplicator.publish(make_signature("c0"))
            # A fresh channel skips publishing fingerprints it has read;
            # force the duplicate append the way a restarted process would.
            duplicator._seen.clear()
            duplicator.publish(make_signature("c0"))
        dropped = writer.compact()
        assert dropped >= 1
        status = writer.status()
        assert status["records"] == status["signatures"] == 4
        # The reader's offset was minted against the pre-compaction file:
        # the generation change forces a rescan, the seen-set stops any
        # re-delivery.
        assert reader.poll() == []
        writer.publish(make_signature("after-compaction"))
        assert len(reader.poll()) == 1

    def test_auto_compaction(self, tmp_path):
        path = str(tmp_path / "pool.sig")
        channel = FileChannel(path, compact_slack=2, check_interval=1)
        channel.publish(make_signature("a"))
        for _ in range(4):
            channel._seen.clear()
            channel.publish(make_signature("a"))
        status = channel.status()
        assert status["records"] == status["signatures"] == 1

    def test_status(self, tmp_path):
        path = str(tmp_path / "pool.sig")
        channel = FileChannel(path)
        channel.publish(make_signature("one"))
        status = channel.status()
        assert status["transport"] == "file"
        assert status["signatures"] == 1
        assert status["bytes"] > 0


# ---------------------------------------------------------------------------
# Daemon + socket channel
# ---------------------------------------------------------------------------


@pytest.fixture
def server(tmp_path):
    instance = HistoryServer(unix_path=str(tmp_path / "pool.sock")).start()
    yield instance
    instance.stop()


def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestSocketChannel:
    def test_connect_requires_a_daemon(self, tmp_path):
        with pytest.raises(ShareError):
            SocketChannel(("unix", str(tmp_path / "nothing.sock")))

    def test_publish_broadcasts_to_other_subscribers(self, server):
        a = SocketChannel(("unix", server._unix_path))
        b = SocketChannel(("unix", server._unix_path))
        assert a.wait_synced(5) and b.wait_synced(5)
        a.publish(make_signature("net"))
        assert wait_until(lambda: len(b.poll()) == 1 or False)
        # The publisher never gets its own signature back.
        assert a.poll() == []
        a.close(), b.close()

    def test_late_joiner_gets_snapshot(self, server):
        early = SocketChannel(("unix", server._unix_path))
        early.publish(make_signature("old1"))
        early.publish(make_signature("old2"))
        assert wait_until(lambda: len(server.history) == 2)
        late = SocketChannel(("unix", server._unix_path))
        assert late.wait_synced(5)
        assert len(late.poll()) == 2
        early.close(), late.close()

    def test_snapshot_and_status_requests(self, server):
        channel = SocketChannel(("unix", server._unix_path))
        channel.publish(make_signature("q"))
        assert wait_until(lambda: len(server.history) == 1)
        assert len(channel.snapshot()) == 1
        status = channel.status()
        assert status["transport"] == "daemon"
        assert status["signatures"] == 1
        assert status["publishes"] == 1
        channel.close()

    def test_server_deduplicates(self, server):
        a = SocketChannel(("unix", server._unix_path))
        b = SocketChannel(("unix", server._unix_path))
        a.publish(make_signature("same"))
        b.publish(make_signature("same"))
        assert wait_until(lambda: server._published == 2)
        assert len(server.history) == 1
        # No broadcast echo of the duplicate back to `a`.
        time.sleep(0.1)
        assert a.poll() == []
        a.close(), b.close()

    def test_malformed_messages_do_not_kill_the_connection(self, server):
        channel = SocketChannel(("unix", server._unix_path))
        channel._send({"op": "publish"})               # missing signature
        channel._send({"op": "no-such-op"})
        channel._send({"op": "publish", "signature": {"bogus": 1}})
        channel.publish(make_signature("still-works"))
        assert wait_until(lambda: len(server.history) == 1)
        channel.close()

    def test_dead_daemon_degrades_without_raising(self, server):
        channel = SocketChannel(("unix", server._unix_path))
        assert channel.wait_synced(5)
        server.stop()
        assert wait_until(lambda: not channel.connected)
        channel.publish(make_signature("lost"))        # swallowed
        assert channel.poll() == []                    # swallowed
        with pytest.raises(ShareError):
            channel.status(timeout=0.2)
        channel.close()

    def test_tcp_transport(self):
        server = HistoryServer(host="127.0.0.1", port=0).start()
        try:
            a = SocketChannel(("tcp", "127.0.0.1", server.port))
            b = SocketChannel(("tcp", "127.0.0.1", server.port))
            a.publish(make_signature("tcp"))
            assert wait_until(lambda: len(b.poll()) == 1 or False)
            a.close(), b.close()
        finally:
            server.stop()

    def test_persistent_daemon_history(self, tmp_path):
        history_path = str(tmp_path / "pool.json")
        sock = str(tmp_path / "pool.sock")
        server = HistoryServer(unix_path=sock, history_path=history_path)
        server.start()
        try:
            channel = SocketChannel(("unix", sock))
            channel.publish(make_signature("persisted"))
            assert wait_until(lambda: len(server.history) == 1)
            channel.close()
        finally:
            server.stop()
        assert os.path.exists(history_path)
        revived = HistoryServer(unix_path=sock, history_path=history_path)
        revived.start()
        try:
            late = SocketChannel(("unix", sock))
            assert late.wait_synced(5)
            assert len(late.poll()) == 1
            late.close()
        finally:
            revived.stop()


# ---------------------------------------------------------------------------
# Transport registry
# ---------------------------------------------------------------------------


class TestTransportRegistry:
    def test_builtins_are_registered(self):
        registered = transports()
        for scheme in ("tcp", "unix", "file", "memory", "gossip"):
            assert scheme in registered

    def test_unknown_scheme_names_the_known_set(self):
        with pytest.raises(ShareError) as err:
            parse_share_spec("carrier-pigeon://loft")
        message = str(err.value)
        for scheme in ("tcp", "unix", "file", "memory", "gossip"):
            assert scheme in message

    def test_custom_transport_round_trip(self):
        hub = MemoryHub("custom-backing")

        def factory(params, client_name=None):
            return hub.channel()

        register_transport("loopback", factory,
                           parse=lambda rest, spec: {"name": rest},
                           summary="test-only transport")
        try:
            assert "loopback" in transports()
            assert parse_share_spec("loopback://x") == (
                "loopback", {"name": "x"})
            channel = open_channel("loopback://x")
            channel.publish(make_signature("via-custom"))
            assert len(hub) == 1
        finally:
            unregister_transport("loopback")
        with pytest.raises(ShareError):
            parse_share_spec("loopback://x")


# ---------------------------------------------------------------------------
# Control records across transports
# ---------------------------------------------------------------------------


class TestControlRecords:
    def test_make_control_shape(self):
        control = make_control("disable", "fp-1", clock=3, origin="ctl")
        assert control == {"action": "disable", "fingerprint": "fp-1",
                           "clock": 3, "origin": "ctl"}
        with pytest.raises(ShareError):
            make_control("explode", "fp-1", clock=1, origin="ctl")

    def test_memory_controls_round_trip(self):
        hub = MemoryHub()
        a, b = hub.channel(), hub.channel()
        assert a.supports_controls
        control = make_control("disable", "fp-mem", clock=1, origin="a")
        a.publish_control(control)
        assert b.poll_controls() == [control]
        assert a.poll_controls() == []     # no echo to the publisher
        assert b.poll_controls() == []     # exactly-once

    def test_file_controls_round_trip(self, tmp_path):
        path = str(tmp_path / "pool.sig")
        a, b = FileChannel(path), FileChannel(path)
        assert a.supports_controls
        a.publish(make_signature("target"))
        a.publish_control(make_control("disable", "fp-file",
                                       clock=2, origin="a"))
        assert len(b.poll()) == 1
        controls = b.poll_controls()
        assert [c["fingerprint"] for c in controls] == ["fp-file"]
        status = a.status()
        assert status["signatures"] == 1
        assert status["controls"] == 1
        assert status["records"] == 2      # one signature + one control line

    def test_file_compaction_keeps_latest_control(self, tmp_path):
        path = str(tmp_path / "pool.sig")
        writer = FileChannel(path)
        writer.publish_control(make_control("disable", "fp-x",
                                            clock=1, origin="w"))
        writer.publish_control(make_control("enable", "fp-x",
                                            clock=5, origin="w"))
        writer.compact()
        late = FileChannel(path)
        controls = late.poll_controls()
        assert len(controls) == 1
        assert controls[0]["action"] == "enable"
        assert controls[0]["clock"] == 5

    def test_daemon_controls_round_trip(self, server):
        a = SocketChannel(("unix", server._unix_path))
        b = SocketChannel(("unix", server._unix_path))
        assert a.wait_synced(5) and b.wait_synced(5)
        assert a.supports_controls
        control = make_control("disable", "fp-net", clock=4, origin="a")
        a.publish_control(control)
        got = []
        assert wait_until(lambda: got.extend(b.poll_controls()) or got)
        assert got == [control]
        assert a.poll_controls() == []     # no echo to the publisher
        assert server.status()["disabled_fingerprints"] == 1

    def test_daemon_snapshot_carries_standing_controls(self, server):
        early = SocketChannel(("unix", server._unix_path))
        early.publish_control(make_control("disable", "fp-held",
                                           clock=9, origin="early"))
        assert wait_until(lambda: server.status()["controls"] == 1)
        late = SocketChannel(("unix", server._unix_path))
        assert late.wait_synced(5)
        controls = late.poll_controls()
        assert [c["fingerprint"] for c in controls] == ["fp-held"]
        early.close(), late.close()

    def test_base_channel_refuses_duplicate_controls(self):
        hub = MemoryHub()
        a, b = hub.channel(), hub.channel()
        control = make_control("disable", "fp-dup", clock=1, origin="a")
        a.publish_control(control)
        a.publish_control(dict(control))   # identical identity: dropped
        assert len(b.poll_controls()) == 1
        # A *different* stamp for the same fingerprint is new information.
        a.publish_control(make_control("disable", "fp-dup",
                                       clock=2, origin="a"))
        assert len(b.poll_controls()) == 1
