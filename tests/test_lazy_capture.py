"""Differential tests: lazy call-stack capture vs eager capture.

The lazy-capture hot path defers the deep stack walk behind the
signature index's top-frame filter; the deep walk happens only when a
request might park (filter hit), when a thread is about to block
(``note_blocked``), or when the monitor archives a deadlock.  These
tests prove the deferral is semantically invisible where it must be —
archived signatures and serialized histories are byte-identical between
the two capture modes on real-runtime deadlocks, and schedule-trace
replays in the simulator are unaffected — and they pin the one place the
modes are *allowed* to diverge: a hold whose acquiring frame returned
before any materialization archives a degraded one-frame stack, which
still matches (and immunizes) by the single-frame matching rule.
"""

from __future__ import annotations

import json
import threading

import pytest

from races.harness import preemption_pressure
from repro.core.callstack import CallStack, LazyCallStack
from repro.core.config import DimmunixConfig
from repro.core.dimmunix import Dimmunix
from repro.core.history import History
from repro.instrument.runtime import InstrumentationRuntime
from repro.sim import DimmunixBackend, ReplayPolicy, ScheduleTrace
from repro.sim.explore import SCENARIOS
from repro.workloads.exploits import exploit_by_name, run_exploit

FAST_CONFIG = dict(monitor_interval=0.02, yield_timeout=None,
                   auto_disable_abort_threshold=None)

#: Bracket-style exploits: every frame that can enter a signature is
#: still live on its thread's stack when the thread blocks, so the lazy
#: materialization at ``note_blocked`` reconstructs the exact eager walk.
BRACKET_EXPLOITS = ["mysql-37080", "jdbc-2147", "jdk-vector"]


def _run_detection_trial(name: str, lazy: bool):
    """One deterministic deadlock-detection trial; returns its history."""
    history = History(path=None, autosave=False)
    config = DimmunixConfig(detection_only=True, lazy_capture=lazy,
                            **FAST_CONFIG)
    dimmunix = Dimmunix(config=config, history=history)
    dimmunix.start()
    runtime = InstrumentationRuntime(dimmunix)
    try:
        outcome = run_exploit(exploit_by_name(name), runtime)
    finally:
        dimmunix.stop()
    return outcome, history


def _immunity_cycle(name: str, lazy: bool):
    """Detection trial then immune trial sharing one history."""
    outcome, history = _run_detection_trial(name, lazy)
    config = DimmunixConfig(lazy_capture=lazy, **FAST_CONFIG)
    dimmunix = Dimmunix(config=config, history=history)
    dimmunix.start()
    runtime = InstrumentationRuntime(dimmunix)
    try:
        second = run_exploit(exploit_by_name(name), runtime)
    finally:
        dimmunix.stop()
    return outcome, second, history


def _serialized(history: History) -> str:
    """Canonical byte form of a history: volatile timestamps zeroed."""
    payload = history.to_dict()
    for record in payload["signatures"]:
        record["created_at"] = 0.0
    payload["signatures"].sort(key=lambda record: record["fingerprint"])
    return json.dumps(payload, sort_keys=True)


class TestRealRuntimeDifferential:
    @pytest.mark.parametrize("name", BRACKET_EXPLOITS)
    def test_archived_history_byte_identical(self, name):
        eager_outcome, eager_history = _run_detection_trial(name, lazy=False)
        lazy_outcome, lazy_history = _run_detection_trial(name, lazy=True)
        assert eager_outcome.deadlocked and lazy_outcome.deadlocked
        assert len(eager_history) >= 1
        assert _serialized(lazy_history) == _serialized(eager_history)

    @pytest.mark.parametrize("name", BRACKET_EXPLOITS)
    def test_signature_fingerprints_identical(self, name):
        _, eager_history = _run_detection_trial(name, lazy=False)
        _, lazy_history = _run_detection_trial(name, lazy=True)
        eager = sorted(sig.fingerprint for sig in eager_history)
        lazy = sorted(sig.fingerprint for sig in lazy_history)
        assert lazy == eager

    def test_immunity_equivalent_under_lazy_capture(self):
        # The full cycle: the signature a lazy run archives must immunize
        # exactly like the eager one (one representative bracket exploit;
        # the whole registry sweep lives in test_exploits.py).
        for lazy in (False, True):
            first, second, history = _immunity_cycle("mysql-37080", lazy)
            assert first.deadlocked
            assert not second.deadlocked
            assert second.completed
            assert second.yields >= 1

    def test_degraded_hold_stack_archives_single_frame_and_immunizes(self):
        # The allowed divergence, pinned: sqlite-1672's inner hold is
        # taken by a helper that returns while the hold persists, so a
        # lazy run can never materialize that hold stack faithfully at
        # archive time — it archives the one-frame fallback instead.
        # The single-frame matching rule keeps that signature effective.
        first, second, history = _immunity_cycle("sqlite-1672", lazy=True)
        assert first.deadlocked
        assert not second.deadlocked
        assert second.yields >= 1
        depths = sorted(len(sig_stack.frames)
                        for sig in history for sig_stack in sig.stacks)
        assert depths[0] == 1, "degraded hold should archive one frame"
        assert depths[-1] > 1, "the blocked waiter should archive deep"


class TestSimulatorDifferential:
    @pytest.mark.parametrize("scenario_name",
                             ["two-lock-inversion", "philosophers-3"])
    def test_replay_histories_identical(self, scenario_name):
        # The simulator runs on symbolic stacks (no capture site at all):
        # flipping lazy_capture must not perturb a deterministic replay's
        # archived history in any byte.
        import glob
        import os
        fixture_dir = os.path.join(os.path.dirname(__file__), "fixtures")
        matches = [path for path in glob.glob(
            os.path.join(fixture_dir, "*.trace.json"))
            if scenario_name in os.path.basename(path)]
        assert matches, f"no fixture for {scenario_name}"
        trace = ScheduleTrace.load(matches[0])
        scenario = SCENARIOS[trace.meta["scenario"]]
        serialized = []
        for lazy in (False, True):
            backend = DimmunixBackend(
                config=DimmunixConfig.for_testing(lazy_capture=lazy))
            scheduler = scenario(backend)
            scheduler.policy = ReplayPolicy(trace, strict=True)
            assert scheduler.run().deadlocked
            serialized.append(_serialized(backend.history))
        assert serialized[0] == serialized[1]


class TestMaterializationSeams:
    """Concurrent materialization — the free-threaded CI job runs these
    under ``PYTHON_GIL=0``, where the reader races are real races."""

    def test_concurrent_materialize_is_single_winner(self):
        ready = threading.Event()
        done = threading.Event()
        captured = {}

        def capturing_thread():
            def inner():
                captured["lazy"] = CallStack.capture_lazy(skip=0, limit=8)
                captured["eager"] = CallStack.capture_cached(skip=0, limit=8)
                ready.set()
                done.wait(10.0)
            inner()

        worker = threading.Thread(target=capturing_thread)
        worker.start()
        try:
            assert ready.wait(10.0)
            lazy = captured["lazy"]
            assert isinstance(lazy, LazyCallStack)
            results = []
            with preemption_pressure():
                racers = [threading.Thread(
                    target=lambda: results.append(lazy.materialize().frames))
                    for _ in range(8)]
                for racer in racers:
                    racer.start()
                for racer in racers:
                    racer.join(10.0)
            assert len(results) == 8
            assert all(frames == results[0] for frames in results)
            # The origin invocation is still parked on its thread, so the
            # cross-thread walk must reconstruct the eager capture's
            # parent chain exactly (the top frames sit on adjacent source
            # lines — the two capture calls — so only linenos differ).
            eager = captured["eager"]
            assert lazy.frames[1:] == eager.frames[1:]
            assert lazy.frames[0].function == eager.frames[0].function
            assert lazy.frames[0].filename == eager.frames[0].filename
        finally:
            done.set()
            worker.join(10.0)

    def test_discard_racing_materialize_never_corrupts(self):
        # discard_origin vs materialize: the survivor is either the full
        # deep walk or the documented one-frame fallback — never a torn
        # mix — and the identity hash never changes.
        for _ in range(50):
            holder = {}

            def site():
                holder["stack"] = CallStack.capture_lazy(skip=0, limit=8)

            site()
            stack = holder["stack"]
            before = hash(stack)
            with preemption_pressure():
                discarder = threading.Thread(target=stack.discard_origin)
                materializer = threading.Thread(target=stack.materialize)
                discarder.start()
                materializer.start()
                discarder.join(10.0)
                materializer.join(10.0)
            frames = stack.frames
            assert len(frames) >= 1
            assert frames[0] == stack.top()
            assert hash(stack) == before
