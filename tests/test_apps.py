"""Unit tests for the miniature target applications (normal operation).

The deadlock-provoking interleavings are covered by the exploit tests;
here we check that the applications behave like the small systems they
are: data goes where it should, reentrant locking works, and the
deadlock-free code paths run cleanly under full instrumentation.
"""

from __future__ import annotations

import threading

import pytest

from repro.apps import (BeanContext, Broker, CharArrayWriter, Connection,
                        CustomRecursiveLock, MiniApp, MiniDB, NetLibrary,
                        SyncHashtable, SyncPrintWriter, SyncStringBuffer,
                        SyncVector, TaskQueue)
from repro.core.dimmunix import Dimmunix
from repro.instrument.runtime import InstrumentationRuntime


@pytest.fixture
def runtime(config, history):
    return InstrumentationRuntime(Dimmunix(config=config, history=history))


@pytest.fixture
def app(runtime):
    return MiniApp(runtime=runtime, acquire_timeout=1.0)


class TestMiniDB:
    def test_insert_select(self, runtime):
        db = MiniDB(runtime=runtime)
        db.create_table("users")
        assert db.insert("users", {"id": 1, "name": "ada"}) == 1
        assert db.insert("users", {"id": 2, "name": "bob"}) == 2
        rows = db.select("users", predicate=lambda row: row["id"] == 2)
        assert rows == [{"id": 2, "name": "bob"}]
        assert db.row_count("users") == 2

    def test_truncate_clears_rows(self, runtime):
        db = MiniDB(runtime=runtime)
        db.create_table("logs")
        db.insert("logs", {"x": 1})
        assert db.truncate("logs") == 1
        assert db.row_count("logs") == 0

    def test_transaction_log_records_operations(self, runtime):
        db = MiniDB(runtime=runtime)
        db.create_table("t")
        db.insert("t", {"a": 1})
        db.truncate("t")
        entries = db.log_entries()
        assert any(entry.startswith("INSERT") for entry in entries)
        assert any(entry.startswith("TRUNCATE") for entry in entries)

    def test_create_table_idempotent(self, runtime):
        db = MiniDB(runtime=runtime)
        first = db.create_table("t")
        second = db.create_table("t")
        assert first is second
        assert db.tables() == ["t"]

    def test_concurrent_inserts_are_consistent(self, runtime):
        db = MiniDB(runtime=runtime)
        db.create_table("t")

        def worker(start):
            for i in range(25):
                db.insert("t", {"id": start + i})

        threads = [threading.Thread(target=worker, args=(k * 100,))
                   for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert db.row_count("t") == 100

    def test_custom_recursive_lock_reentrancy(self, app):
        rlock = CustomRecursiveLock(app)
        rlock.acquire()
        rlock.acquire()
        assert rlock.held
        rlock.release()
        assert rlock.held
        rlock.release()
        assert not rlock.held

    def test_custom_recursive_lock_rejects_foreign_release(self, app):
        rlock = CustomRecursiveLock(app)
        rlock.acquire()
        errors = []

        def bad():
            try:
                rlock.release()
            except RuntimeError as exc:
                errors.append(exc)

        thread = threading.Thread(target=bad)
        thread.start()
        thread.join()
        assert errors
        rlock.release()


class TestConnectionPool:
    def test_prepare_and_query(self, runtime):
        connection = Connection(runtime=runtime)
        statement = connection.prepare_statement("SELECT * FROM t")
        rows = statement.execute_query()
        assert rows and "id" in rows[0]
        statement.set_parameter(1, 42)
        assert statement.parameters[1] == 42

    def test_close_marks_statements_closed(self, runtime):
        connection = Connection(runtime=runtime)
        statement = connection.prepare_statement("SELECT 1")
        connection.close()
        assert connection.closed
        assert statement.closed
        assert connection.statements == []

    def test_statement_close_unregisters(self, runtime):
        connection = Connection(runtime=runtime)
        statement = connection.prepare_statement("SELECT 1")
        statement.close()
        assert statement not in connection.statements

    def test_warnings_after_close(self, runtime):
        connection = Connection(runtime=runtime)
        statement = connection.prepare_statement("SELECT 1")
        connection.close()
        assert "connection warning" in statement.get_warnings()

    def test_create_statement_plain(self, runtime):
        connection = Connection(runtime=runtime)
        statement = connection.create_statement()
        assert statement.execute_query("SELECT * FROM t")


class TestBroker:
    def test_produce_dispatch_ack_cycle(self, runtime):
        broker = Broker(runtime=runtime)
        acks = broker.produce_consume_cycle("orders", messages=5)
        assert acks == 5
        queue = broker.queues["orders"]
        assert queue.dequeued == 5
        assert queue.in_flight == 0

    def test_drop_event_requeues_prefetched(self, runtime):
        broker = Broker(runtime=runtime)
        queue = broker.create_queue("q")
        subscription = broker.subscribe(queue, "c")
        queue.enqueue({"id": 1})
        queue.dispatch_one()
        assert len(subscription.prefetched) == 1
        recovered = queue.drop_event(subscription)
        assert recovered == 1
        assert len(queue.messages) == 1
        assert subscription not in queue.subscriptions

    def test_session_consumer_registration(self, runtime):
        broker = Broker(runtime=runtime)
        session = broker.create_session()
        session.create_consumer("c1")
        assert broker.dispatch_to_sessions({"m": 1}) == 1
        assert session.consumers == ["c1"]

    def test_dispatch_without_subscribers_is_noop(self, runtime):
        broker = Broker(runtime=runtime)
        queue = broker.create_queue("empty")
        queue.enqueue({"id": 1})
        assert queue.dispatch_one() is False


class TestCollections:
    def test_vector_add_all(self, app):
        v1 = SyncVector(app, [1, 2])
        v2 = SyncVector(app, [3])
        assert v1.add_all(v2) == 3
        assert v1.items() == [1, 2, 3]
        assert v2.size() == 1

    def test_hashtable_put_get_equals(self, app):
        h1 = SyncHashtable(app)
        h2 = SyncHashtable(app)
        h1.put("k", 1)
        h2.put("k", 2)
        assert h1.get("k") == 1
        assert h1.get("missing", "default") == "default"
        assert h1.equals(h2)

    def test_stringbuffer_append(self, app):
        s1 = SyncStringBuffer(app, "hello ")
        s2 = SyncStringBuffer(app, "world")
        s1.append(s2)
        assert s1.to_string() == "hello world"
        s1.append_text("!")
        assert s1.to_string().endswith("!")

    def test_printwriter_and_chararraywriter(self, app):
        backing = CharArrayWriter(app)
        writer = SyncPrintWriter(app, backing=backing)
        writer.write("abc")
        assert backing.contents() == "abc"
        backing.write("def")
        assert backing.write_to(writer) == len("abcdef")
        assert "abcdef" in writer.contents()

    def test_beancontext_property_propagation(self, app):
        parent = BeanContext(app, "parent")
        child = BeanContext(app, "child")
        parent.add_child(child)
        parent.property_change("theme", "dark")
        assert child.properties["theme"] == "dark"
        assert child.remove(parent)
        assert parent.children == []
        assert not child.remove(parent)


class TestNetLibrary:
    def test_open_write_close(self, runtime):
        library = NetLibrary(runtime=runtime)
        socket = library.nl_open()
        assert library.nl_write(socket, b"ping") == 4
        assert library.nl_close(socket)
        assert socket.socket_id not in library.sockets
        assert library.nl_write(socket, b"late") == 0

    def test_shutdown_closes_everything(self, runtime):
        library = NetLibrary(runtime=runtime)
        sockets = [library.nl_open() for _ in range(3)]
        assert library.nl_shutdown() == 3
        assert not library.initialized
        assert all(not socket.open for socket in sockets)


class TestTaskQueue:
    def test_schedule_run_unschedules_oneshot(self, runtime):
        queue = TaskQueue(runtime=runtime)
        ran = []
        task = queue.schedule(action=lambda: ran.append(1), periodic=False)
        assert task.run_once()
        assert ran == [1]
        assert task not in queue.pending()

    def test_periodic_task_stays_scheduled(self, runtime):
        queue = TaskQueue(runtime=runtime)
        task = queue.schedule(periodic=True)
        assert task.run_once()
        assert task.run_once()
        assert task in queue.pending()
        assert task.runs == 2

    def test_cancel_prevents_run(self, runtime):
        queue = TaskQueue(runtime=runtime)
        task = queue.schedule(periodic=True)
        assert task.cancel()
        assert not task.run_once()
        assert task not in queue.pending()

    def test_shutdown_stops_all(self, runtime):
        queue = TaskQueue(runtime=runtime)
        tasks = [queue.schedule(periodic=True) for _ in range(3)]
        assert queue.shutdown() == 3
        assert queue.shut_down
        assert all(task.cancelled for task in tasks)
        with pytest.raises(RuntimeError):
            queue.schedule()


class TestAioBroker:
    """The asyncio broker app (deadlock-free paths + the exploit pair)."""

    @pytest.fixture
    def aio_runtime(self, config, history):
        from repro.instrument.aio import AsyncioRuntime
        return AsyncioRuntime(Dimmunix(config=config, history=history))

    def test_produce_dispatch_ack_cycle(self, aio_runtime):
        import asyncio
        from repro.apps import AioBroker

        broker = AioBroker(runtime=aio_runtime)
        acks = asyncio.run(broker.produce_consume_cycle("orders", messages=5))
        assert acks == 5
        queue = broker.queues["orders"]
        assert queue.dequeued == 5
        assert queue.in_flight == 0

    def test_drop_event_requeues_prefetched(self, aio_runtime):
        import asyncio
        from repro.apps import AioBroker

        async def scenario():
            broker = AioBroker(runtime=aio_runtime)
            queue = await broker.create_queue("q")
            subscription = await broker.subscribe(queue, "c")
            await queue.enqueue({"id": 1})
            await queue.dispatch_one()
            assert len(subscription.prefetched) == 1
            recovered = await queue.drop_event(subscription)
            assert recovered == 1
            assert len(queue.messages) == 1
            assert subscription not in queue.subscriptions

        asyncio.run(scenario())

    def test_session_consumer_registration(self, aio_runtime):
        import asyncio
        from repro.apps import AioBroker

        async def scenario():
            broker = AioBroker(runtime=aio_runtime)
            session = broker.create_session()
            await session.create_consumer("c1")
            assert await broker.dispatch_to_sessions({"m": 1}) == 1
            assert session.consumers == ["c1"]

        asyncio.run(scenario())

    def test_bug336_pair_deadlocks_and_learns(self, aio_runtime):
        """The create_consumer/dispatch inversion wedges two tasks; the
        bounded timeout surfaces AppLockTimeout and the monitor archives
        the cycle's signature."""
        import asyncio
        from repro.apps import AioBroker, AppLockTimeout, aio_interleave_pause

        dimmunix = aio_runtime.dimmunix
        dimmunix.start()
        try:
            async def scenario():
                broker = AioBroker(runtime=aio_runtime, acquire_timeout=0.8)
                session = broker.create_session()
                # Bootstrap consumer so dispatch has a session to lock.
                await session.create_consumer("bootstrap")
                reached = [asyncio.Event(), asyncio.Event()]
                timeouts = []

                async def register():
                    try:
                        await session.create_consumer(
                            "c", _pause=aio_interleave_pause(reached[0],
                                                             reached[1], 0.3))
                    except AppLockTimeout:
                        timeouts.append("register")

                async def dispatch():
                    try:
                        await broker.dispatch_to_sessions(
                            {"m": 1}, _pause=aio_interleave_pause(reached[1],
                                                                  reached[0],
                                                                  0.3))
                    except AppLockTimeout:
                        timeouts.append("dispatch")

                await asyncio.gather(register(), dispatch())
                return timeouts

            timeouts = asyncio.run(scenario())
            assert timeouts  # at least one side timed out in the deadlock
            assert len(dimmunix.history) >= 1
        finally:
            dimmunix.stop()

    def test_aiobroker_workload_runs_clean(self, aio_runtime):
        from repro.harness import run_aiobroker_workload

        result = run_aiobroker_workload(aio_runtime, tasks=2, cycles=2,
                                        messages_per_cycle=3)
        assert result.errors == 0
        assert result.operations > 0
        assert result.throughput > 0
