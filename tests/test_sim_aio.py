"""Tests of the async-program bridge onto the simulator and explorer.

Coroutine programs must be first-class citizens of the model checker:
deterministic execution, exploration of all bounded task interleavings,
record/replay/shrink of counterexamples, and the immunity claim holding
for the canonical asyncio scenarios.
"""

from __future__ import annotations

import os

from repro.core.config import DimmunixConfig
from repro.sim import (DimmunixBackend, Explorer, ImmunityChecker,
                       NullBackend, ReplayPolicy, ScheduleTrace, SimScheduler,
                       alog, asleep, async_program,
                       build_aio_philosophers, build_aio_two_lock_inversion,
                       call_site, new_aio_lock)
from repro.sim.explore import SCENARIOS

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                       "aio-two-lock-inversion.trace.json")


class TestCoroutineBridge:
    def test_async_program_runs_to_completion(self):
        scheduler = SimScheduler(backend=NullBackend())
        lock = new_aio_lock(scheduler, "L")
        counter = {"entered": 0}

        async def worker(tag):
            await asleep(0.001)
            async with lock:
                counter["entered"] += 1
                await asleep(0.001)
            await alog(f"{tag} done")

        for tag in ("a", "b", "c"):
            scheduler.add_thread(async_program(worker, tag), name=tag)
        result = scheduler.run()
        assert result.completed
        assert counter["entered"] == 3
        assert result.lock_ops == 3
        assert any("done" in line for line in result.log)

    def test_try_acquire_result_reaches_the_coroutine(self):
        scheduler = SimScheduler(backend=NullBackend())
        lock = new_aio_lock(scheduler, "L")
        outcomes = {}

        async def holder():
            await lock.acquire(call_site("h:1", "main:0"))
            await asleep(0.01)
            await lock.release()

        async def prober():
            await asleep(0.001)  # while the holder is inside
            outcomes["first"] = await lock.try_acquire(call_site("p:1", "main:0"))
            await asleep(0.1)   # after the holder released
            outcomes["second"] = await lock.try_acquire(call_site("p:2", "main:0"))
            if outcomes["second"]:
                await lock.release()

        scheduler.add_thread(async_program(holder), name="holder")
        scheduler.add_thread(async_program(prober), name="prober")
        result = scheduler.run()
        assert result.completed
        assert outcomes == {"first": False, "second": True}

    def test_nested_async_with_on_sim_locks(self):
        scheduler = SimScheduler(backend=NullBackend())
        outer = new_aio_lock(scheduler, "outer")
        inner = new_aio_lock(scheduler, "inner")

        async def worker():
            async with outer:
                async with inner:
                    await asleep(0.001)

        scheduler.add_thread(async_program(worker), name="w")
        assert scheduler.run().completed

    def test_deterministic_replay_of_async_schedule(self):
        explorer = Explorer(lambda: build_aio_two_lock_inversion(NullBackend()),
                            name="aio-two-lock-inversion")
        found = explorer.explore()
        trace = found.deadlocks[0].trace
        first = explorer.replay(trace)
        second = explorer.replay(trace)
        assert first.deadlocked and second.deadlocked
        assert list(first.schedule) == list(second.schedule) == trace.choices


class TestAsyncExploration:
    def test_explorer_finds_async_deadlock_exhaustively(self):
        explorer = Explorer(lambda: build_aio_two_lock_inversion(NullBackend()),
                            name="aio-two-lock-inversion")
        result = explorer.explore()
        assert result.exhausted
        assert result.deadlock_count >= 1
        assert result.unique_deadlocks == 1
        assert result.completed >= 1  # some task interleavings complete

    def test_async_philosophers_deadlock_found(self):
        explorer = Explorer(lambda: build_aio_philosophers(NullBackend(),
                                                           seats=3),
                            name="aio-philosophers-3")
        result = explorer.explore()
        assert result.exhausted
        assert result.deadlock_count >= 1

    def test_immunity_claim_holds_for_async_two_lock(self):
        report = ImmunityChecker(build_aio_two_lock_inversion,
                                 name="aio-two-lock-inversion").check()
        assert not report.vacuous
        assert report.learned_signatures == 1
        assert report.holds

    def test_immunity_claim_holds_for_async_philosophers(self):
        report = ImmunityChecker(
            lambda backend: build_aio_philosophers(backend, seats=3),
            name="aio-philosophers-3").check()
        assert report.holds

    def test_async_scenarios_registered(self):
        assert "aio-two-lock-inversion" in SCENARIOS
        assert "aio-philosophers-3" in SCENARIOS


class TestAsyncReplayFixture:
    """The minimized async deadlock trace is a first-class replay fixture.

    (``test_replay_fixtures.py`` already sweeps every fixture file; these
    assertions pin the async fixture explicitly so a registry or bridge
    regression cannot silently drop it from the sweep.)
    """

    def test_fixture_exists_and_replays(self):
        trace = ScheduleTrace.load(FIXTURE)
        assert trace.meta["scenario"] == "aio-two-lock-inversion"
        scheduler = SCENARIOS[trace.meta["scenario"]](NullBackend())
        scheduler.policy = ReplayPolicy(trace, strict=True)
        result = scheduler.run()
        assert result.deadlocked

    def test_fixture_seeds_async_immunity(self):
        trace = ScheduleTrace.load(FIXTURE)
        learner = DimmunixBackend(config=DimmunixConfig.for_testing())
        scheduler = SCENARIOS[trace.meta["scenario"]](learner)
        scheduler.policy = ReplayPolicy(trace, strict=True)
        assert scheduler.run().deadlocked
        assert len(learner.history) == 1

        immune = Explorer(
            lambda: SCENARIOS[trace.meta["scenario"]](learner.fork()),
            name=trace.meta["scenario"]).explore()
        assert immune.exhausted
        assert immune.deadlock_count == 0
