"""End-to-end cross-deployment immunity with real OS processes.

Runs the :mod:`repro.share.demo` orchestration in miniature: worker A (a
real subprocess) deadlocks once, the pool learns the signature, and a
fresh worker process is immune on its *first* run.  The full ≥4-worker
fan-out over both transports runs in CI's ``history-sharing-smoke`` job;
here one orchestrated story per transport keeps tier-1 honest without
making it slow.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.share.demo import run_demo, run_worker


def _src_path() -> str:
    return os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")


@pytest.fixture(autouse=True)
def _ensure_children_find_repro(monkeypatch):
    """Worker subprocesses import repro through PYTHONPATH."""
    existing = os.environ.get("PYTHONPATH", "")
    src = _src_path()
    if src not in existing.split(os.pathsep):
        monkeypatch.setenv(
            "PYTHONPATH", src + (os.pathsep + existing if existing else ""))


class TestMultiProcessImmunity:
    def test_file_transport_story(self, tmp_path):
        summary = run_demo("file", workers=3, workdir=str(tmp_path),
                           verbose=False)
        results = {r["worker"]: r for r in summary["results"]}
        assert results["A"]["deadlocked"]
        assert not results["B"]["deadlocked"]
        assert not results["C"]["deadlocked"]
        assert results["B"]["signatures"] >= 1
        assert results["C"]["signatures"] >= 1

    def test_daemon_transport_story(self, tmp_path):
        if not os.path.exists("/tmp") or os.name == "nt":
            pytest.skip("needs unix sockets")
        summary = run_demo("unix", workers=3, workdir=str(tmp_path),
                           verbose=False)
        results = {r["worker"]: r for r in summary["results"]}
        assert [w for w, r in results.items() if r["deadlocked"]] == ["A"]
        for name in ("B", "C"):
            assert results[name]["completed"] == 2
            assert results[name]["synced_before_run"]

    def test_worker_cli_json_contract(self, tmp_path):
        """The worker subcommand prints exactly one JSON object."""
        share = "file://" + str(tmp_path / "pool.sig")
        process = subprocess.run(
            [sys.executable, "-m", "repro.share.demo", "worker",
             "--share", share, "--id", "solo"],
            capture_output=True, text=True, timeout=60)
        assert process.returncode == 0, process.stderr
        result = json.loads(process.stdout.strip().splitlines()[-1])
        assert result["worker"] == "solo"
        assert result["deadlocked"]                # nobody immunized it
        assert result["signatures"] >= 1           # and it published

    def test_in_process_worker_pools_through_file(self, tmp_path):
        """run_worker is importable and pools through a plain path spec."""
        share = str(tmp_path / "pool.sig")         # bare path == file://
        first = run_worker(share, "first")
        assert first["deadlocked"]
        second = run_worker(share, "second", expect_immunity=True)
        assert not second["deadlocked"]
        assert second["synced_before_run"]
        assert second["yields"] >= 1

    def test_fleet_gossip_story_in_miniature(self, tmp_path):
        """The multi-host fabric, shrunk to tier-1 size: 4 workers across
        2 simulated hosts on a gossip mesh, plus the live-disable
        sentinel finale.  CI's ``fleet-convergence`` job runs the full
        50x3 version of this over both topologies."""
        from repro.share.demo import run_fleet
        timeline = str(tmp_path / "timeline.json")
        summary = run_fleet("gossip", workers=4, hosts=2,
                            timeline_path=timeline, batch_size=4,
                            verbose=False)
        results = {r["worker"]: r for r in summary["results"]}
        deadlocked = [w for w, r in results.items() if r["deadlocked"]]
        assert deadlocked == ["A"]
        assert summary["hosts"] == 2
        assert summary["sentinel"]["disabled_live"]
        with open(timeline, encoding="utf-8") as handle:
            events = json.load(handle)["events"]
        names = [e["event"] for e in events]
        assert "host_converged" in names
        assert "sentinel_disabled_live" in names
