"""Tests for the experiment harness (small-scale runs and report formatting)."""

from __future__ import annotations

import pytest

from repro.core.dimmunix import Dimmunix
from repro.harness.ablation import run_allow_edge_ablation
from repro.harness.appworkloads import run_broker_workload, run_jdbc_workload
from repro.harness.effectiveness import run_table1, run_table2
from repro.harness.falsepos import run_figure9, run_gate_lock_comparison
from repro.harness.report import format_key_values, format_table
from repro.harness.resources import run_resource_utilization
from repro.instrument.runtime import InstrumentationRuntime
from repro.workloads.exploits import TABLE1_EXPLOITS, TABLE2_EXPLOITS


class TestReportFormatting:
    def test_format_table_aligns_columns(self):
        rows = [{"name": "a", "value": 1}, {"name": "longer", "value": 23.456}]
        text = format_table(rows, title="Demo")
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 2 + 1 + len(rows)

    def test_format_table_handles_row_objects(self):
        class Row:
            def as_dict(self):
                return {"x": 1}

        assert "x" in format_table([Row()])

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="Empty")

    def test_format_key_values(self):
        text = format_key_values({"a": 1, "b": None}, title="KV")
        assert "a: 1" in text and "b: -" in text


class TestAppWorkloads:
    @pytest.fixture
    def runtime(self, config, history):
        return InstrumentationRuntime(Dimmunix(config=config, history=history))

    def test_broker_workload_produces_operations(self, runtime):
        result = run_broker_workload(runtime, threads=2, cycles=2,
                                     messages_per_cycle=3)
        assert result.operations > 0
        assert result.errors == 0
        assert result.throughput > 0

    def test_jdbc_workload_produces_operations(self, runtime):
        result = run_jdbc_workload(runtime, threads=2, transactions=3, pool_size=2)
        assert result.operations > 0
        assert result.errors == 0


class TestEffectivenessRunners:
    def test_single_bug_row_shape(self):
        rows = run_table1(trials=1, exploits=[TABLE1_EXPLOITS[0]])
        assert len(rows) == 1
        row = rows[0]
        assert row.baseline_deadlocks >= 1
        assert row.immune_deadlocks == 0
        assert row.yields_min >= 1
        assert row.patterns >= 1
        assert "bug" in row.as_dict()

    def test_table2_runner_uses_table2_exploits(self):
        rows = run_table2(trials=1, exploits=[TABLE2_EXPLOITS[0]])
        assert len(rows) == 1
        assert rows[0].immune_deadlocks == 0


class TestSimulationRunners:
    def test_figure9_small(self):
        rows = run_figure9(depths=(1, 3), threads=8, locks=4, signatures=8,
                           iterations=10, full_depth=3)
        assert len(rows) == 2
        assert rows[0].false_positives >= rows[1].false_positives

    def test_gate_comparison_small(self):
        comparison = run_gate_lock_comparison(threads=8, locks=4, signatures=8,
                                              iterations=10)
        assert comparison.gates == 8
        assert comparison.throughput > 0

    def test_resources_small(self):
        rows = run_resource_utilization(thread_counts=(2, 8), signatures=8,
                                        iterations=4)
        assert len(rows) == 2
        assert rows[0].history_bytes_per_signature > 0

    def test_allow_edge_ablation(self):
        rows = run_allow_edge_ablation()
        flags = {row.consider_allow_edges: row.yields for row in rows}
        assert flags[True] >= 1
        assert flags[False] == 0
