"""Unit tests for the avoidance-side RAG cache."""

from __future__ import annotations

import pytest

from repro.core.cache import AvoidanceCache
from repro.core.callstack import CallStack
from repro.core.errors import AvoidanceError


def stack(*labels):
    return CallStack.from_labels(list(labels))


SA = stack("a:1", "x:9")
SB = stack("b:2", "x:9")


@pytest.fixture
def cache():
    return AvoidanceCache()


class TestAllowEdges:
    def test_add_and_remove_allow(self, cache):
        cache.add_allow(1, 10, SA)
        assert cache.waiting_of(1) == (10, SA)
        assert cache.remove_allow(1) == (10, SA)
        assert cache.waiting_of(1) is None

    def test_new_allow_replaces_previous(self, cache):
        cache.add_allow(1, 10, SA)
        cache.add_allow(1, 11, SB)
        assert cache.waiting_of(1) == (11, SB)
        # The stale entry must not linger in the Allowed sets.
        assert cache.candidates_matching(SA, 2, set(), set()) == []

    def test_allow_appears_in_candidates(self, cache):
        cache.add_allow(1, 10, SA)
        candidates = cache.candidates_matching(SA, 2, set(), set())
        assert candidates == [(1, 10, SA)]


class TestHoldEdges:
    def test_add_hold_promotes_allow(self, cache):
        cache.add_allow(1, 10, SA)
        assert cache.add_hold(1, 10, SA) == 1
        assert cache.holder_of(10) == 1
        assert cache.waiting_of(1) is None
        assert cache.hold_count(1, 10) == 1

    def test_reentrant_holds(self, cache):
        cache.add_hold(1, 10, SA)
        assert cache.add_hold(1, 10, SB) == 2
        fully, _ = cache.release_hold(1, 10)
        assert not fully
        fully, _ = cache.release_hold(1, 10)
        assert fully
        assert cache.holder_of(10) is None

    def test_conflicting_hold_raises(self, cache):
        cache.add_hold(1, 10, SA)
        with pytest.raises(AvoidanceError):
            cache.add_hold(2, 10, SB)

    def test_release_not_held_raises(self, cache):
        with pytest.raises(AvoidanceError):
            cache.release_hold(1, 10)

    def test_release_removes_from_allowed_set(self, cache):
        cache.add_hold(1, 10, SA)
        cache.release_hold(1, 10)
        assert cache.candidates_matching(SA, 2, set(), set()) == []

    def test_locks_held_by_and_total(self, cache):
        cache.add_hold(1, 10, SA)
        cache.add_hold(1, 11, SB)
        cache.add_hold(1, 11, SB)
        assert sorted(cache.locks_held_by(1)) == [10, 11]
        assert cache.total_holds(1) == 3


class TestYieldCauses:
    def test_set_and_clear(self, cache):
        cache.set_yield_cause(1, [(2, 20, SA)])
        assert cache.yield_cause_of(1) == {(2, 20, SA)}
        assert cache.yielding_threads() == [1]
        cache.clear_yield_cause(1)
        assert cache.yield_cause_of(1) == set()

    def test_threads_to_wake_matches_thread_and_lock(self, cache):
        cache.add_hold(2, 20, SA)
        cache.set_yield_cause(1, [(2, 20, SA)])
        cache.set_yield_cause(3, [(2, 21, SA)])
        cache.release_hold(2, 20)
        assert cache.threads_to_wake(2, 20, SA) == [1]

    def test_forget_thread_cleans_everything(self, cache):
        cache.add_allow(1, 10, SA)
        cache.add_hold(1, 11, SB)
        cache.set_yield_cause(1, [(2, 20, SA)])
        cache.forget_thread(1)
        assert cache.waiting_of(1) is None
        assert cache.holder_of(11) is None
        assert cache.yield_cause_of(1) == set()
        assert cache.candidates_matching(SB, 2, set(), set()) == []


class TestCandidates:
    def test_exclusions(self, cache):
        cache.add_hold(1, 10, SA)
        cache.add_hold(2, 11, SA)
        assert len(cache.candidates_matching(SA, 2, set(), set())) == 2
        assert cache.candidates_matching(SA, 2, {1}, set()) == [(2, 11, SA)]
        assert cache.candidates_matching(SA, 2, set(), {11}) == [(1, 10, SA)]

    def test_matching_depth(self, cache):
        cache.add_hold(1, 10, stack("a:1", "caller:5"))
        sig_stack = stack("a:1", "other:7")
        assert len(cache.candidates_matching(sig_stack, 1, set(), set())) == 1
        assert cache.candidates_matching(sig_stack, 2, set(), set()) == []

    def test_snapshot_and_sizes(self, cache):
        cache.add_hold(1, 10, SA)
        cache.add_allow(2, 11, SB)
        snap = cache.snapshot()
        assert snap["holders"] == {10: (1, 1)}
        assert snap["waiting"] == {2: 11}
        assert snap["distinct_stacks"] == 2
        assert sum(cache.allowed_set_sizes().values()) == 2

    def test_clear(self, cache):
        cache.add_hold(1, 10, SA)
        cache.clear()
        assert cache.holder_of(10) is None
