"""Tests for the Dimmunix facade (lifecycle, wakers, signature management)."""

from __future__ import annotations

import os


from repro.core.callstack import CallStack
from repro.core.config import DimmunixConfig
from repro.core.dimmunix import Dimmunix
from repro.core.history import History
from repro.core.signature import Signature


def stack(*labels):
    return CallStack.from_labels(list(labels))


S1 = stack("lock:4", "update:1", "main:0")
S2 = stack("lock:4", "update:2", "main:0")


def paper_signature():
    return Signature([stack("lock:4", "update:1"), stack("lock:4", "update:2")],
                     matching_depth=2)


class TestLifecycle:
    def test_start_stop_idempotent(self, config):
        dimmunix = Dimmunix(config=config)
        dimmunix.start()
        dimmunix.start()
        assert dimmunix.running
        dimmunix.stop()
        dimmunix.stop()
        assert not dimmunix.running

    def test_context_manager(self, config):
        with Dimmunix(config=config) as dimmunix:
            assert dimmunix.running
        assert not dimmunix.running

    def test_stop_saves_history(self, tmp_path):
        path = str(tmp_path / "h.json")
        config = DimmunixConfig(history_path=path, monitor_interval=0.02)
        dimmunix = Dimmunix(config=config)
        dimmunix.start()
        dimmunix.history.add(paper_signature())
        dimmunix.stop()
        assert os.path.exists(path)
        assert len(History(path=path)) == 1

    def test_process_now_detects_synchronously(self, dimmunix):
        dimmunix.request(1, 1, S1)
        dimmunix.acquired(1, 1, S1)
        dimmunix.request(2, 2, S2)
        dimmunix.acquired(2, 2, S2)
        dimmunix.request(1, 2, S1)
        dimmunix.request(2, 1, S2)
        found = dimmunix.process_now()
        assert len(found) == 1
        assert dimmunix.report()["deadlocks_seen"] == 1


class TestWakers:
    def test_wake_invokes_registered_callable(self, dimmunix):
        woken = []
        dimmunix.register_waker(7, lambda: woken.append(7))
        dimmunix.wake([7, 8])
        assert woken == [7]
        dimmunix.unregister_waker(7)
        dimmunix.wake([7])
        assert woken == [7]

    def test_release_wakes_yielded_thread(self, dimmunix):
        dimmunix.history.add(paper_signature())
        woken = []
        dimmunix.register_waker(2, lambda: woken.append(2))
        dimmunix.request(1, 2, S2)
        dimmunix.acquired(1, 2, S2)
        assert dimmunix.request(2, 1, S1).is_yield
        to_wake = dimmunix.release(1, 2)
        dimmunix.wake(to_wake)
        assert woken == [2]


class TestSignatureManagement:
    def test_disable_last_signature(self, dimmunix):
        dimmunix.history.add(paper_signature())
        dimmunix.request(1, 2, S2)
        dimmunix.acquired(1, 2, S2)
        dimmunix.request(2, 1, S1)
        disabled = dimmunix.disable_last_signature()
        assert disabled is not None
        assert not dimmunix.history.get(disabled.fingerprint).enabled

    def test_disable_last_signature_without_avoidance(self, dimmunix):
        assert dimmunix.disable_last_signature() is None

    def test_export_import(self, dimmunix, tmp_path):
        dimmunix.history.add(paper_signature())
        path = str(tmp_path / "sigs.json")
        assert dimmunix.export_signatures(path) == 1
        other = Dimmunix(config=DimmunixConfig.for_testing())
        assert other.import_signatures(path) == 1
        assert len(other.history) == 1

    def test_reload_history(self, tmp_path):
        path = str(tmp_path / "h.json")
        config = DimmunixConfig(history_path=path, monitor_interval=0.02)
        dimmunix = Dimmunix(config=config)
        # Simulate a vendor patch: another process writes a signature.
        vendor = History(path=None, autosave=False)
        vendor.add(paper_signature())
        vendor.save(path)
        assert dimmunix.reload_history() == 1
        assert len(dimmunix.signatures()) == 1

    def test_report_shape(self, dimmunix):
        report = dimmunix.report()
        assert set(report) == {"stats", "history_size", "enabled_signatures",
                               "deadlocks_seen", "starvations_seen",
                               "history_bytes"}
