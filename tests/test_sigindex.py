"""Tests for the incremental suffix-keyed signature index."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.avoidance import AvoidanceEngine
from repro.core.callstack import CallStack
from repro.core.config import DimmunixConfig
from repro.core.dimmunix import Dimmunix
from repro.core.history import History
from repro.core.sigindex import SignatureIndex
from repro.core.signature import Signature


def stack(*labels):
    return CallStack.from_labels(list(labels))


def make_signature(seed: int, depth: int = 2) -> Signature:
    return Signature([stack(f"lock:{seed}", f"callerA:{seed}", "main:0"),
                      stack(f"lock:{seed + 1000}", f"callerB:{seed}", "main:0")],
                     matching_depth=depth)


@pytest.fixture
def history():
    return History(path=None, autosave=False)


class TestIncrementalMaintenance:
    def test_add_and_lookup(self, history):
        index = SignatureIndex(history)
        sig = make_signature(1)
        history.add(sig)
        assert index.candidates(stack("lock:1", "callerA:1", "main:0")) == [sig]
        assert index.candidates(stack("lock:999", "other:0")) == []

    def test_remove_disable_enable(self, history):
        index = SignatureIndex(history)
        sig = make_signature(1)
        history.add(sig)
        probe = stack("lock:1", "callerA:1", "main:0")
        history.disable(sig.fingerprint)
        assert index.candidates(probe) == []
        history.enable(sig.fingerprint)
        assert index.candidates(probe) == [sig]
        history.remove(sig.fingerprint)
        assert index.candidates(probe) == []
        assert len(index) == 0

    def test_clear_empties_index(self, history):
        index = SignatureIndex(history)
        history.add(make_signature(1))
        history.add(make_signature(2))
        history.clear()
        assert len(index) == 0
        assert index.candidates(stack("lock:1", "callerA:1", "main:0")) == []

    def test_no_full_rebuild_after_construction(self, history):
        for seed in range(5):
            history.add(make_signature(seed))
        index = SignatureIndex(history)
        rebuilds_after_init = index.full_rebuilds
        history.add(make_signature(50))
        history.disable(make_signature(1).fingerprint)
        index.refresh(history.signatures()[0])
        for _ in range(100):
            index.candidates(stack("lock:0", "callerA:0", "main:0"))
        assert index.full_rebuilds == rebuilds_after_init
        assert index.equivalent_to_rebuild()


class TestDepthRecalibration:
    def test_refresh_moves_only_affected_signature(self, history):
        index = SignatureIndex(history)
        moved = make_signature(1, depth=2)
        untouched = make_signature(2, depth=2)
        history.add(moved)
        history.add(untouched)
        untouched_keys = set(index.keys_of(untouched.fingerprint))
        old_moved_keys = set(index.keys_of(moved.fingerprint))

        moved.matching_depth = 3
        index.refresh(moved)

        assert set(index.keys_of(untouched.fingerprint)) == untouched_keys
        new_moved_keys = set(index.keys_of(moved.fingerprint))
        assert new_moved_keys.isdisjoint(old_moved_keys)
        assert all(depth == 3 for depth, _key in new_moved_keys)
        assert index.equivalent_to_rebuild()

    def test_calibrator_recalibration_invalidates_exactly_affected(self):
        """Regression: a depth recalibration must re-bucket the affected
        signature — and only it — without a full rebuild or staleness scan."""
        config = DimmunixConfig.for_testing(calibration_enabled=True)
        dimmunix = Dimmunix(config=config)
        engine = dimmunix.engine
        recalibrated = make_signature(1, depth=4)
        bystander = make_signature(2, depth=4)
        dimmunix.history.add(recalibrated)
        dimmunix.history.add(bystander)
        # Calibration resets a signature's depth to 1 the first time the
        # calibrator sees it; recalibrate_all goes through the same path.
        bystander_keys = set(engine.index.keys_of(bystander.fingerprint))
        rebuilds = engine.index.full_rebuilds
        dimmunix.calibrator.recalibrate_all([recalibrated])
        assert recalibrated.matching_depth == 1
        assert engine.index.indexed_depth_of(recalibrated.fingerprint) == 1
        assert set(engine.index.keys_of(bystander.fingerprint)) == bystander_keys
        assert engine.index.full_rebuilds == rebuilds
        assert engine.index.equivalent_to_rebuild()

    def test_engine_matches_at_recalibrated_depth(self):
        history = History(path=None, autosave=False)
        sig = Signature([stack("lock:4", "update:1"), stack("lock:4", "update:2")],
                        matching_depth=2)
        history.add(sig)
        engine = AvoidanceEngine(history, DimmunixConfig.for_testing())
        s1 = stack("lock:4", "update:1", "main:0")
        s2 = stack("lock:4", "update:2", "main:0")
        engine.request(1, 2, s2)
        engine.acquired(1, 2, s2)
        assert engine.request(2, 1, s1).is_yield
        engine.force_go(2)
        assert engine.request(2, 1, s1).is_go
        engine.acquired(2, 1, s1)
        engine.release(2, 1)
        # Deepen the depth so the "update" frames must also match; the
        # index must re-bucket, making previously yielding paths pass.
        sig.matching_depth = 3
        engine.index.refresh(sig)
        different = stack("lock:4", "update:1", "elsewhere:9")
        assert engine.request(2, 1, different).is_go


class TestNoStalenessScanOnRequestPath:
    def test_request_path_never_scans_history(self, monkeypatch):
        """Regression for the O(history)-per-request staleness scan: the
        request path must not call ``history.get`` (the old scan called it
        twice per signature per request) and must not rebuild the index."""
        history = History(path=None, autosave=False)
        for seed in range(50):
            history.add(make_signature(seed))
        engine = AvoidanceEngine(history, DimmunixConfig.for_testing())
        rebuilds = engine.index.full_rebuilds

        calls = {"get": 0}
        original_get = history.get

        def counting_get(fingerprint):
            calls["get"] += 1
            return original_get(fingerprint)

        monkeypatch.setattr(history, "get", counting_get)
        probe = stack("app:1", "caller:1", "main:0")
        for i in range(200):
            engine.request(1, 10 + (i % 3), probe)
            engine.acquired(1, 10 + (i % 3), probe)
            engine.release(1, 10 + (i % 3))
        assert calls["get"] == 0
        assert engine.index.full_rebuilds == rebuilds


class TestRandomizedEquivalence:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_add_disable_recalibrate_stays_equivalent(self, seed):
        rng = random.Random(seed)
        history = History(path=None, autosave=False)
        index = SignatureIndex(history)
        pool = []
        for step in range(40):
            op = rng.randrange(5)
            if op == 0 or not pool:
                sig = make_signature(rng.randrange(20),
                                     depth=rng.randrange(1, 5))
                if history.add(sig):
                    pool.append(sig)
            elif op == 1:
                history.disable(rng.choice(pool).fingerprint)
            elif op == 2:
                history.enable(rng.choice(pool).fingerprint)
            elif op == 3:
                victim = rng.choice(pool)
                history.remove(victim.fingerprint)
                pool = [s for s in pool
                        if s.fingerprint != victim.fingerprint]
            else:
                sig = rng.choice(pool)
                sig.matching_depth = rng.randrange(1, 6)
                index.refresh(sig)
            assert index.equivalent_to_rebuild(), f"diverged at step {step}"
