"""Property-based tests (hypothesis) for core invariants.

These check the invariants the paper's correctness argument rests on:

* signatures and histories round-trip through serialization,
* the RAG never ends up with dangling edges after any well-formed event
  sequence,
* a deadlock-free program (single lock per thread, or globally ordered
  acquisition) never produces a signature — Dimmunix "never adds a false
  deadlock to the history" (section 5.7),
* once a random lock-order program has deadlocked and its signature is in
  the history, replaying the same program with the same seed completes.
"""

from __future__ import annotations

import string

from hypothesis import given, settings, strategies as st

from repro.core.callstack import CallStack, Frame
from repro.core.config import DimmunixConfig
from repro.core.history import History
from repro.core.signature import DEADLOCK, STARVATION, Signature
from repro.sim import DimmunixBackend, NullBackend, SimScheduler, two_phase_program

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

_name = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)

frames = st.builds(Frame, function=_name, filename=_name,
                   lineno=st.integers(min_value=0, max_value=9999))

stacks = st.builds(CallStack, st.lists(frames, min_size=1, max_size=6))

signatures = st.builds(
    Signature,
    st.lists(stacks, min_size=1, max_size=4),
    kind=st.sampled_from([DEADLOCK, STARVATION]),
    matching_depth=st.integers(min_value=1, max_value=8),
)


# ---------------------------------------------------------------------------
# Serialization round trips
# ---------------------------------------------------------------------------

class TestSerializationProperties:
    @given(stacks)
    @settings(max_examples=50, deadline=None)
    def test_callstack_roundtrip(self, stack):
        assert CallStack.decode(stack.encode()) == stack

    @given(signatures)
    @settings(max_examples=50, deadline=None)
    def test_signature_roundtrip(self, signature):
        restored = Signature.from_dict(signature.to_dict())
        assert restored == signature
        assert restored.fingerprint == signature.fingerprint
        assert restored.matching_depth == signature.matching_depth

    @given(st.lists(signatures, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_history_roundtrip(self, signature_list):
        import tempfile
        with tempfile.TemporaryDirectory() as workdir:
            path = f"{workdir}/history.json"
            history = History(path=path)
            for signature in signature_list:
                history.add(signature)
            reloaded = History(path=path)
            assert ({s.fingerprint for s in reloaded}
                    == {s.fingerprint for s in history})

    @given(stacks, stacks, st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_matching_is_reflexive_and_consistent(self, a, b, depth):
        assert a.matches(a, depth)
        assert a.matches(b, depth) == b.matches(a, depth)
        if a.matches(b, depth):
            # Matching at a deeper depth implies matching at any shallower one.
            for shallower in range(1, depth):
                assert a.matches(b, shallower)


# ---------------------------------------------------------------------------
# Simulator-level properties
# ---------------------------------------------------------------------------

def _ordered_workload(scheduler, locks, thread_specs):
    """Threads acquiring locks in a single global order: deadlock free."""
    for index, spec in enumerate(thread_specs):
        order = sorted(set(spec))
        scheduler.add_thread(two_phase_program(locks, order, f"txn{index}",
                                               hold_time=0.0001,
                                               outside_time=0.0001))


class TestSimulationProperties:
    @given(st.lists(st.lists(st.integers(min_value=0, max_value=4),
                             min_size=1, max_size=4),
                    min_size=1, max_size=6),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_globally_ordered_programs_never_generate_signatures(self, specs, seed):
        backend = DimmunixBackend(config=DimmunixConfig.for_testing())
        scheduler = SimScheduler(backend=backend, seed=seed)
        locks = [scheduler.new_lock(f"L{i}") for i in range(5)]
        _ordered_workload(scheduler, locks, specs)
        result = scheduler.run()
        assert result.completed
        assert len(backend.history) == 0
        assert result.yields == 0

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_deadlock_then_immunity_for_opposite_orders(self, seed):
        def build(backend, lock_names=("A", "B")):
            scheduler = SimScheduler(backend=backend, seed=seed)
            locks = [scheduler.new_lock(name) for name in lock_names]
            scheduler.add_thread(two_phase_program(locks, [0, 1], "fwd",
                                                   hold_time=0.002,
                                                   outside_time=0.0))
            scheduler.add_thread(two_phase_program(locks, [1, 0], "rev",
                                                   hold_time=0.002,
                                                   outside_time=0.0))
            return scheduler

        probe = build(NullBackend())
        baseline = probe.run()
        detection = DimmunixBackend(
            config=DimmunixConfig.for_testing(detection_only=True))
        first = build(detection).run()
        if not first.deadlocked:
            # This particular schedule dodged the deadlock; nothing to learn.
            assert len(detection.history) == 0
            return
        assert len(detection.history) >= 1
        immune = DimmunixBackend(config=DimmunixConfig.for_testing(),
                                 history=detection.history)
        second = build(immune).run()
        assert second.completed
        assert not second.deadlocked
        # And the baseline really would have deadlocked again.
        assert baseline.deadlocked == first.deadlocked

    @given(st.integers(min_value=2, max_value=24),
           st.integers(min_value=0, max_value=500))
    @settings(max_examples=15, deadline=None)
    def test_single_lock_contention_always_completes(self, threads, seed):
        backend = DimmunixBackend(config=DimmunixConfig.for_testing())
        scheduler = SimScheduler(backend=backend, seed=seed)
        lock = scheduler.new_lock("only")
        for index in range(threads):
            scheduler.add_thread(two_phase_program([lock], [0], f"t{index}",
                                                   hold_time=0.0005))
        result = scheduler.run()
        assert result.completed
        assert result.lock_ops == threads
        assert len(backend.history) == 0
