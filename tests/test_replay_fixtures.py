"""Replay-fixture regression tests.

``tests/fixtures/*.trace.json`` are minimized deadlock counterexamples
found by the explorer and checked in.  Each must keep replaying
deterministically: the scenario named in the trace's metadata is rebuilt
under ``NullBackend``, the schedule is re-driven strictly, the recorded
deadlock must re-manifest, and re-recording plus re-serializing must be
byte-identical to the checked-in file.  A behaviour change in the
scheduler, the policies, or the trace format shows up here first.
"""

from __future__ import annotations

import glob
import os

import pytest

from repro.core.config import DimmunixConfig
from repro.sim import (DimmunixBackend, Explorer, NullBackend, ReplayPolicy,
                       ScheduleTrace)
from repro.sim.explore import SCENARIOS

FIXTURE_DIR = os.path.join(os.path.dirname(__file__), "fixtures")
FIXTURES = sorted(glob.glob(os.path.join(FIXTURE_DIR, "*.trace.json")))


def _load(path):
    trace = ScheduleTrace.load(path)
    scenario = SCENARIOS[trace.meta["scenario"]]
    return trace, scenario


def test_fixture_directory_is_populated():
    assert len(FIXTURES) >= 2


@pytest.mark.parametrize("path", FIXTURES, ids=os.path.basename)
def test_fixture_replays_to_deadlock(path):
    trace, scenario = _load(path)
    scheduler = scenario(NullBackend())
    scheduler.policy = ReplayPolicy(trace, strict=True)
    result = scheduler.run()
    assert result.deadlocked, f"{path} no longer reproduces its deadlock"


@pytest.mark.parametrize("path", FIXTURES, ids=os.path.basename)
def test_fixture_rerecords_byte_identically(path):
    trace, scenario = _load(path)
    scheduler = scenario(NullBackend())
    scheduler.policy = ReplayPolicy(trace, strict=True)
    result = scheduler.run()
    rerecorded = ScheduleTrace(list(result.schedule), meta=trace.meta)
    assert rerecorded.choices == trace.choices
    with open(path, "r", encoding="utf-8") as handle:
        assert rerecorded.dumps() == handle.read(), (
            f"{path} serialization drifted")


@pytest.mark.parametrize("path", FIXTURES, ids=os.path.basename)
def test_fixture_is_minimal(path):
    """Greedy shrinking must not find a shorter schedule than the fixture."""
    trace, scenario = _load(path)
    explorer = Explorer(lambda: scenario(NullBackend()),
                        name=trace.meta["scenario"])
    assert len(explorer.shrink(trace)) == len(trace)


@pytest.mark.parametrize("path", FIXTURES, ids=os.path.basename)
def test_fixture_seeds_immunity(path):
    """Replaying the fixture under Dimmunix archives exactly its signature,
    which then protects every bounded interleaving."""
    trace, scenario = _load(path)
    learner = DimmunixBackend(config=DimmunixConfig.for_testing())
    scheduler = scenario(learner)
    scheduler.policy = ReplayPolicy(trace, strict=True)
    assert scheduler.run().deadlocked
    assert len(learner.history) == 1

    prototype = DimmunixBackend(config=DimmunixConfig.for_testing(),
                                history=learner.history)
    immune = Explorer(lambda: scenario(prototype.fork()),
                      name=trace.meta["scenario"]).explore()
    assert immune.exhausted
    assert immune.deadlock_count == 0
