"""Shared pytest fixtures for the Dimmunix reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core.callstack import CallStack
from repro.core.config import DimmunixConfig
from repro.core.dimmunix import Dimmunix
from repro.core.history import History
from repro.core.signature import Signature
from repro.instrument import aio as instrument_aio
from repro.instrument import patching, runtime as instrument_runtime


@pytest.fixture
def config() -> DimmunixConfig:
    """A fast, in-memory configuration for unit tests."""
    return DimmunixConfig.for_testing()


@pytest.fixture
def history() -> History:
    """An empty in-memory history."""
    return History(path=None, autosave=False)


@pytest.fixture
def dimmunix(config, history) -> Dimmunix:
    """A Dimmunix instance without the background monitor running."""
    return Dimmunix(config=config, history=history)


@pytest.fixture
def started_dimmunix(config, history):
    """A Dimmunix instance with the monitor thread running."""
    instance = Dimmunix(config=config, history=history)
    instance.start()
    yield instance
    instance.stop()


@pytest.fixture(autouse=True)
def _clean_instrumentation():
    """Ensure tests never leak patched ``threading``/``asyncio`` modules
    or default runtimes."""
    yield
    if patching.installed():
        patching.uninstall()
    instrument_runtime.reset_default_dimmunix()
    if instrument_aio.asyncio_installed():
        instrument_aio.uninstall_asyncio()
    instrument_aio.reset_default_aio_runtime()


def stack(*labels: str) -> CallStack:
    """Shorthand for building symbolic call stacks in tests."""
    return CallStack.from_labels(list(labels))


def two_thread_signature(depth: int = 4) -> Signature:
    """The canonical update(A,B)/update(B,A) signature from the paper's §4."""
    return Signature.from_stacks(
        [["lock:update:4", "update:main:1"], ["lock:update:4", "update:main:2"]],
        matching_depth=depth,
    )
