"""Multi-holder resources: engine-level semaphores and reader-writer locks.

Covers the capacity-aware resource model end to end below the runtime
adapters: RAG waits-for-any-permit edges, multi-successor cycle
detection, the avoidance cache's multi-holder records, the engine's
permit-aware matching, v2 signature modes, and the two new simulator
scenarios under the model checker.
"""

from __future__ import annotations

import pytest

from repro.core.avoidance import AvoidanceEngine, Decision
from repro.core.cache import AvoidanceCache
from repro.core.callstack import CallStack
from repro.core.config import DimmunixConfig
from repro.core.cycles import find_deadlock_cycles
from repro.core.errors import AvoidanceError
from repro.core.events import acquired_event, allow_event, release_event
from repro.core.history import History
from repro.core.rag import ResourceAllocationGraph, ResourceState, LockState
from repro.core.signature import DEADLOCK, EXCLUSIVE, SHARED, Signature
from repro.sim.backends import DimmunixBackend, NullBackend
from repro.sim.explore import (ImmunityChecker, build_rwlock_upgrade_inversion,
                               build_sem_exhaustion_cycle, SCENARIOS)
from repro.sim.locks import SimRWLock, SimSemaphore


def stack(*labels):
    return CallStack.from_labels(list(labels))


S1 = stack("take:0", "pool:a", "main:0")
S2 = stack("take:0", "pool:b", "main:0")
S3 = stack("take:0", "pool:c", "main:0")


class TestRagMultiHolder:
    def test_lockstate_alias_preserved(self):
        assert LockState is ResourceState

    def test_semaphore_tracks_multiple_holders(self):
        rag = ResourceAllocationGraph()
        rag.apply(acquired_event(1, 10, S1, capacity=2))
        rag.apply(acquired_event(2, 10, S2, capacity=2))
        resource = rag.lock(10)
        assert resource.holder_ids() == [1, 2]
        assert rag.holders_of(10) == [1, 2]
        assert resource.capacity == 2
        assert resource.owner is None  # no *sole* holder
        assert rag.hold_stack(10, 1) == S1
        assert rag.hold_stack(10, 2) == S2

    def test_release_removes_only_releasers_edge(self):
        rag = ResourceAllocationGraph()
        rag.apply(acquired_event(1, 10, S1, capacity=2))
        rag.apply(acquired_event(2, 10, S2, capacity=2))
        rag.apply(release_event(1, 10))
        assert rag.lock(10).holder_ids() == [2]
        assert rag.holder_of(10) == 2

    def test_exclusive_request_waits_on_all_permit_holders(self):
        rag = ResourceAllocationGraph()
        rag.apply(acquired_event(1, 10, S1, capacity=2))
        rag.apply(acquired_event(2, 10, S2, capacity=2))
        blockers = rag.lock(10).blocking_holders(3, EXCLUSIVE)
        assert sorted(holder for holder, _s, _m in blockers) == [1, 2]

    def test_free_permit_means_not_blocked(self):
        rag = ResourceAllocationGraph()
        rag.apply(acquired_event(1, 10, S1, capacity=2))
        assert rag.lock(10).blocking_holders(3, EXCLUSIVE) == []

    def test_shared_request_blocked_only_by_writer(self):
        rag = ResourceAllocationGraph()
        rag.apply(acquired_event(1, 20, S1, mode=SHARED))
        assert rag.lock(20).blocking_holders(2, SHARED) == []
        rag2 = ResourceAllocationGraph()
        rag2.apply(acquired_event(1, 20, S1, mode=EXCLUSIVE))
        rag2.apply(acquired_event(2, 20, S2, mode=SHARED))
        blockers = rag2.lock(20).blocking_holders(3, SHARED)
        assert [holder for holder, _s, _m in blockers] == [1]

    def test_writer_waits_on_every_reader(self):
        rag = ResourceAllocationGraph()
        rag.apply(acquired_event(1, 20, S1, mode=SHARED))
        rag.apply(acquired_event(2, 20, S2, mode=SHARED))
        blockers = rag.lock(20).blocking_holders(3, EXCLUSIVE)
        assert sorted(holder for holder, _s, _m in blockers) == [1, 2]
        modes = {mode for _h, _s, mode in blockers}
        assert modes == {SHARED}

    def test_plain_mutex_behaviour_unchanged(self):
        rag = ResourceAllocationGraph()
        rag.apply(acquired_event(1, 30, S1))
        rag.apply(acquired_event(2, 30, S2))  # stale-owner recovery
        assert rag.holder_of(30) == 2


class TestMultiHolderCycles:
    def test_permit_exhaustion_cycle_detected(self):
        """Two workers each holding one permit of a 2-permit pool, both
        blocked on their second acquisition."""
        rag = ResourceAllocationGraph()
        rag.apply(acquired_event(1, 10, S1, capacity=2))
        rag.apply(acquired_event(2, 10, S2, capacity=2))
        rag.apply(allow_event(1, 10, stack("take:1", "pool:a", "main:0"),
                              capacity=2))
        rag.apply(allow_event(2, 10, stack("take:1", "pool:b", "main:0"),
                              capacity=2))
        cycles = find_deadlock_cycles(rag)
        assert len(cycles) == 1
        cycle = cycles[0]
        assert sorted(cycle.threads) == [1, 2]
        assert set(cycle.stacks) == {S1, S2}
        signature = cycle.to_signature(matching_depth=3)
        assert signature.kind == DEADLOCK
        assert signature.modes == (EXCLUSIVE, EXCLUSIVE)

    def test_rwlock_upgrade_cycle_detected(self):
        rag = ResourceAllocationGraph()
        rag.apply(acquired_event(1, 20, S1, mode=SHARED))
        rag.apply(acquired_event(2, 20, S2, mode=SHARED))
        rag.apply(allow_event(1, 20, stack("up:1", "a:0"), mode=EXCLUSIVE))
        rag.apply(allow_event(2, 20, stack("up:1", "b:0"), mode=EXCLUSIVE))
        cycles = find_deadlock_cycles(rag)
        assert len(cycles) == 1
        signature = cycles[0].to_signature(matching_depth=3)
        assert signature.modes == (SHARED, SHARED)

    def test_no_cycle_while_a_permit_holder_can_run(self):
        """T3 blocked on the pool, but holder T2 is not blocked at all."""
        rag = ResourceAllocationGraph()
        rag.apply(acquired_event(1, 10, S1, capacity=2))
        rag.apply(acquired_event(2, 10, S2, capacity=2))
        rag.apply(allow_event(3, 10, S3, capacity=2))
        assert find_deadlock_cycles(rag) == []

    def test_three_way_cycle_through_pool_and_mutex(self):
        """T1,T3 hold the pool and wait on L; T2 holds L and waits on the
        pool — a cycle that needs the multi-successor walk."""
        rag = ResourceAllocationGraph()
        rag.apply(acquired_event(1, 10, S1, capacity=2))
        rag.apply(acquired_event(3, 10, S3, capacity=2))
        rag.apply(acquired_event(2, 40, S2))
        rag.apply(allow_event(1, 40, stack("lock:1", "a:0")))
        rag.apply(allow_event(3, 40, stack("lock:1", "c:0")))
        rag.apply(allow_event(2, 10, stack("take:1", "b:0"), capacity=2))
        cycles = find_deadlock_cycles(rag)
        assert cycles
        involved = set()
        for cycle in cycles:
            involved.update(cycle.threads)
        assert 2 in involved


class TestCacheMultiHolder:
    def test_mutex_double_acquire_still_raises(self):
        cache = AvoidanceCache()
        cache.add_hold(1, 10, S1)
        with pytest.raises(AvoidanceError):
            cache.add_hold(2, 10, S2)

    def test_semaphore_permits_coexist(self):
        cache = AvoidanceCache()
        cache.add_hold(1, 10, S1, capacity=2)
        cache.add_hold(2, 10, S2, capacity=2)
        assert sorted(cache.holders_of(10)) == [1, 2]
        assert cache.holder_of(10) is None  # no sole holder
        fully, released = cache.release_hold(1, 10)
        assert fully and released == S1
        assert cache.holders_of(10) == [2]

    def test_shared_holds_coexist(self):
        cache = AvoidanceCache()
        cache.add_hold(1, 20, S1, mode=SHARED)
        cache.add_hold(2, 20, S2, mode=SHARED)
        assert sorted(cache.holders_of(20)) == [1, 2]

    def test_binding_live_for_permit_holder(self):
        cache = AvoidanceCache()
        cache.add_hold(1, 10, S1, capacity=2)
        cache.add_hold(2, 10, S2, capacity=2)
        assert cache.binding_live(1, 10)
        assert cache.binding_live(2, 10)
        cache.release_hold(1, 10)
        assert not cache.binding_live(1, 10)


class TestEngineSemantics:
    def _engine(self, signature=None):
        history = History(path=None, autosave=False)
        if signature is not None:
            history.add(signature)
        return AvoidanceEngine(history,
                               DimmunixConfig.for_testing(matching_depth=3))

    def test_second_permit_is_not_reentrant_bypass(self):
        """Re-acquiring a semaphore must keep consulting the history."""
        signature = Signature([S1, S2], matching_depth=3)
        engine = self._engine(signature)
        assert engine.request(1, 10, S1, capacity=2).is_go
        engine.acquired(1, 10, S1, capacity=2)
        # Thread 2's first permit instantiates the signature with T1's
        # hold binding on the *same* lock id — multi-permit resources are
        # exempt from the distinct-locks constraint.
        outcome = engine.request(2, 10, S2, capacity=2)
        assert outcome.decision is Decision.YIELD
        assert outcome.signature is signature

    def test_mutex_keeps_distinct_locks_constraint(self):
        """The same shape on a plain mutex must NOT match: one lock cannot
        be two bindings of a signature instance."""
        signature = Signature([S1, S2], matching_depth=3)
        engine = self._engine(signature)
        assert engine.request(1, 10, S1).is_go
        engine.acquired(1, 10, S1)
        engine.release(1, 10)
        assert engine.request(2, 10, S2).is_go

    def test_reentrant_mutex_bypass_still_in_place(self):
        signature = Signature([S1, S2], matching_depth=3)
        engine = self._engine(signature)
        assert engine.request(1, 10, S1).is_go
        engine.acquired(1, 10, S1)
        assert engine.request(1, 10, S1).is_go  # reentrant: bypass

    def test_partial_semaphore_release_wakes_waiters(self):
        signature = Signature([S1, S2], matching_depth=3)
        engine = self._engine(signature)
        assert engine.request(1, 10, S1, capacity=2).is_go
        engine.acquired(1, 10, S1, capacity=2)
        assert engine.request(1, 10, S1, capacity=2).is_go
        engine.acquired(1, 10, S1, capacity=2)  # T1 holds two permits
        outcome = engine.request(2, 10, S2, capacity=2)
        assert outcome.is_yield
        # Releasing ONE of T1's permits (same site) dissolves the cause.
        woken = engine.release(1, 10)
        assert woken == [2]

    def test_capacity_learned_lazily(self):
        engine = self._engine()
        engine.request(1, 10, S1, capacity=3)
        assert engine.capacity_of(10) == 3
        assert engine.is_multiholder(10)
        engine.request(1, 20, S1, mode=SHARED)
        assert engine.is_multiholder(20)
        assert not engine.is_multiholder(99)


class TestSignatureModes:
    def test_default_modes_are_exclusive(self):
        signature = Signature([S1, S2])
        assert signature.modes == (EXCLUSIVE, EXCLUSIVE)
        assert not signature.multiholder

    def test_all_exclusive_fingerprint_matches_v1(self):
        """A v1 record (no modes) and the same stacks with explicit
        exclusive modes must collide — old histories keep matching."""
        with_modes = Signature([S1, S2], modes=[EXCLUSIVE, EXCLUSIVE])
        without = Signature([S1, S2])
        assert with_modes.fingerprint == without.fingerprint
        assert with_modes == without

    def test_shared_modes_change_identity(self):
        exclusive = Signature([S1, S2])
        shared = Signature([S1, S2], modes=[SHARED, SHARED])
        assert exclusive.fingerprint != shared.fingerprint
        assert exclusive != shared
        assert shared.multiholder

    def test_modes_sorted_with_stacks(self):
        forward = Signature([S1, S2], modes=[SHARED, EXCLUSIVE])
        backward = Signature([S2, S1], modes=[EXCLUSIVE, SHARED])
        assert forward.fingerprint == backward.fingerprint
        assert forward.stacks == backward.stacks
        assert forward.modes == backward.modes

    def test_roundtrip_preserves_modes(self):
        signature = Signature([S1, S2], modes=[SHARED, EXCLUSIVE],
                              matching_depth=2)
        twin = Signature.from_dict(signature.to_dict())
        assert twin == signature
        assert twin.modes == signature.modes

    def test_mode_count_mismatch_rejected(self):
        from repro.core.errors import SignatureError
        with pytest.raises(SignatureError):
            Signature([S1, S2], modes=[SHARED])
        with pytest.raises(SignatureError):
            Signature([S1], modes=["bogus"])

    def test_describe_annotates_shared_stacks(self):
        signature = Signature([S1, S2], modes=[SHARED, SHARED])
        assert "[shared]" in signature.describe()


class TestSimResources:
    def test_semaphore_grant_rules(self):
        pool = SimSemaphore(2)
        pool.grant(1)
        assert pool.can_grant(2)
        pool.grant(2)
        assert not pool.can_grant(1)  # a holder cannot exceed capacity
        assert pool.release(1) is True
        assert pool.can_grant(3)

    def test_rwlock_grant_rules(self):
        rwlock = SimRWLock()
        pool_reader, other_reader, writer = 1, 2, 3
        rwlock.grant(pool_reader, SHARED)
        assert rwlock.can_grant(other_reader, SHARED)
        rwlock.grant(other_reader, SHARED)
        assert not rwlock.can_grant(writer, EXCLUSIVE)
        rwlock.release(other_reader)
        # Sole reader may upgrade; others may not.
        assert rwlock.can_grant(pool_reader, EXCLUSIVE)
        assert not rwlock.can_grant(writer, EXCLUSIVE)


class TestScenarioImmunity:
    """The acceptance criterion, as executable checks: both scenarios
    deadlock in >= 1 interleaving under NullBackend and in none under
    Dimmunix with the seeded history."""

    @pytest.mark.parametrize("name", ["sem-exhaustion-cycle",
                                      "rwlock-upgrade-inversion"])
    def test_registered_scenario_is_immunizable(self, name):
        checker = ImmunityChecker(SCENARIOS[name], name=name, max_runs=2000)
        report = checker.check()
        assert report.vulnerable.deadlock_count >= 1
        assert report.learned_signatures >= 1
        assert report.holds, report.as_dict()

    def test_sem_scenario_signature_is_multi_permit(self):
        """The learned signature binds two stacks of the same pool."""
        backend = DimmunixBackend(config=DimmunixConfig.for_testing())
        scheduler = build_sem_exhaustion_cycle(backend)
        scheduler.run()
        assert scheduler.result.deadlocked or len(backend.history) >= 0
        # Drive to the deadlock deterministically if the seeded-random run
        # completed without one.
        if not len(backend.history):
            checker = ImmunityChecker(build_sem_exhaustion_cycle,
                                      name="sem", max_runs=500)
            report = checker.check()
            assert report.learned_signatures >= 1
            return
        signature = backend.history.signatures()[0]
        assert signature.kind == DEADLOCK
        assert signature.size == 2

    def test_rwlock_scenario_learns_shared_modes(self):
        checker = ImmunityChecker(build_rwlock_upgrade_inversion,
                                  name="rwlock", max_runs=2000, shrink=False)
        report = checker.check()
        assert report.holds

    def test_null_backend_deadlock_footprint(self):
        """Under NullBackend the stall is a genuine permit-wait cycle."""
        from repro.sim.explore import Explorer
        explorer = Explorer(lambda: build_sem_exhaustion_cycle(NullBackend()),
                            name="sem", max_runs=500)
        result = explorer.explore()
        assert result.deadlock_count >= 1
        stall = result.deadlocks[0].result.stall
        # Both workers wait on the same pool resource.
        assert len(set(stall.waiting.values())) == 1
