"""Tests for signature porting across upgrades and the histctl CLI."""

from __future__ import annotations

import json

import pytest

from repro.core.callstack import CallStack, Frame
from repro.core.history import History
from repro.core.porting import CodeMapping, port_history, port_signature
from repro.core.signature import Signature
from repro.tools.histctl import main as histctl


def make_signature(lineno=10):
    return Signature([
        CallStack([Frame("insert", "db.py", lineno), Frame("handle", "srv.py", 40)]),
        CallStack([Frame("truncate", "db.py", lineno + 5), Frame("admin", "srv.py", 80)]),
    ], matching_depth=4)


class TestPorting:
    def test_line_offsets_applied(self):
        signature = make_signature()
        mapping = CodeMapping(line_offsets={"db.py": 7})
        ported = port_signature(signature, mapping)
        assert ported is not signature
        frames = [frame for stack in ported.stacks for frame in stack]
        db_lines = sorted(f.lineno for f in frames if f.filename == "db.py")
        assert db_lines == [17, 22]
        # Counters survive; depth resets for recalibration.
        assert ported.matching_depth == 1

    def test_rename_applied(self):
        signature = make_signature()
        mapping = CodeMapping(renamed_functions={("db.py", "insert"): ("db.py", "insert_row")})
        ported = port_signature(signature, mapping, reset_depth=False)
        functions = {frame.function for stack in ported.stacks for frame in stack}
        assert "insert_row" in functions and "insert" not in functions
        assert ported.matching_depth == 4

    def test_moved_location_takes_precedence(self):
        signature = make_signature()
        mapping = CodeMapping(
            line_offsets={"db.py": 100},
            moved_locations={("db.py", "insert", 10): ("storage.py", "insert", 3)})
        ported = port_signature(signature, mapping)
        frames = [frame for stack in ported.stacks for frame in stack]
        assert any(f.filename == "storage.py" and f.lineno == 3 for f in frames)

    def test_deleted_function_makes_signature_unportable(self):
        signature = make_signature()
        mapping = CodeMapping(deleted_functions=[("db.py", "truncate")])
        assert port_signature(signature, mapping) is None

    def test_identity_mapping_returns_same_object(self):
        signature = make_signature()
        assert port_signature(signature, CodeMapping()) is signature

    def test_port_history_replaces_and_disables(self):
        history = History()
        movable = make_signature()
        obsolete = Signature([CallStack([Frame("gone", "old.py", 1)]),
                              CallStack([Frame("kept", "new.py", 2)])])
        history.add(movable)
        history.add(obsolete)
        mapping = CodeMapping(line_offsets={"db.py": 3},
                              deleted_functions=[("old.py", "gone")])
        report = port_history(history, mapping)
        assert report.summary() == {"ported": 1, "unportable": 1, "unchanged": 0}
        assert report.total == 2
        # The obsolete signature is disabled, not silently kept active.
        assert not history.get(obsolete.fingerprint).enabled
        # The ported one replaced the original.
        assert history.get(movable.fingerprint) is None
        assert len(history.enabled_signatures()) == 1

    def test_port_history_can_drop_unportable(self):
        history = History()
        obsolete = Signature([CallStack([Frame("gone", "old.py", 1)])])
        history.add(obsolete)
        mapping = CodeMapping(deleted_functions=[("old.py", "gone")])
        port_history(history, mapping, drop_unportable=True)
        assert len(history) == 0


class TestHistctl:
    @pytest.fixture
    def history_file(self, tmp_path):
        path = str(tmp_path / "app.history")
        history = History(path=path)
        history.add(make_signature())
        return path, history.signatures()[0].fingerprint

    def test_list(self, history_file, capsys):
        path, fingerprint = history_file
        assert histctl(["list", path]) == 0
        output = capsys.readouterr().out
        assert fingerprint in output

    def test_list_empty(self, tmp_path, capsys):
        path = str(tmp_path / "empty.history")
        History(path=path).save()
        assert histctl(["list", path]) == 0
        assert "empty" in capsys.readouterr().out

    def test_show(self, history_file, capsys):
        path, fingerprint = history_file
        assert histctl(["show", path, fingerprint]) == 0
        assert "deadlock signature" in capsys.readouterr().out

    def test_show_unknown(self, history_file):
        path, _ = history_file
        assert histctl(["show", path, "ffff"]) == 1

    def test_disable_enable_cycle(self, history_file):
        path, fingerprint = history_file
        assert histctl(["disable", path, fingerprint]) == 0
        assert History(path=path).get(fingerprint).disabled
        assert histctl(["enable", path, fingerprint]) == 0
        assert not History(path=path).get(fingerprint).disabled

    def test_remove(self, history_file):
        path, fingerprint = history_file
        assert histctl(["remove", path, fingerprint]) == 0
        assert len(History(path=path)) == 0

    @pytest.fixture
    def v2_file_with_unknown_kind(self, tmp_path):
        """A v2 history mixing a loadable shared-mode record with one of a
        kind this build does not know (written by a 'newer' release)."""
        known = Signature([
            CallStack([Frame("read", "cache.py", 21)]),
            CallStack([Frame("read", "cache.py", 22)]),
        ], matching_depth=2, modes=["shared", "shared"])
        payload = {
            "format_version": 2,
            "signatures": [
                known.to_dict(),
                {"kind": "resource-exhaustion",
                 "stacks": [["grab|pool.py|3"]],
                 "modes": ["exclusive"],
                 "matching_depth": 2,
                 "fingerprint": "feedfacecafebeef"},
            ],
        }
        path = str(tmp_path / "v2.history")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        return path, known.fingerprint

    def test_list_renders_unknown_kinds_gracefully(self, v2_file_with_unknown_kind,
                                                   capsys):
        path, known_fp = v2_file_with_unknown_kind
        assert histctl(["list", path]) == 0
        output = capsys.readouterr().out
        assert known_fp in output
        assert "resource-exhaustion" in output
        assert "unrecognized" in output

    def test_list_shows_shared_modes(self, v2_file_with_unknown_kind, capsys):
        path, known_fp = v2_file_with_unknown_kind
        assert histctl(["list", path]) == 0
        output = capsys.readouterr().out
        assert "2sh" in output  # the shared-mode column for the rwlock record

    def test_show_renders_raw_record(self, v2_file_with_unknown_kind, capsys):
        path, _ = v2_file_with_unknown_kind
        assert histctl(["show", path, "feedfacecafebeef"]) == 0
        output = capsys.readouterr().out
        assert "resource-exhaustion" in output
        assert "grab|pool.py|3" in output

    def test_mutating_command_refuses_partial_files(self, v2_file_with_unknown_kind,
                                                    capsys):
        """disable would drop the unknown record on save; it must refuse
        with a clean error, not a traceback."""
        path, known_fp = v2_file_with_unknown_kind
        assert histctl(["disable", path, known_fp]) == 1
        err = capsys.readouterr().err
        assert "histctl:" in err
        # The file is untouched: both records still present.
        with open(path, encoding="utf-8") as handle:
            assert len(json.load(handle)["signatures"]) == 2

    def test_export_and_merge(self, history_file, tmp_path):
        path, fingerprint = history_file
        export_path = str(tmp_path / "sigs.json")
        assert histctl(["export", path, export_path]) == 0
        with open(export_path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert len(payload["signatures"]) == 1

        other_path = str(tmp_path / "other.history")
        History(path=other_path).save()
        assert histctl(["merge", other_path, export_path]) == 0
        assert len(History(path=other_path)) == 1
        # Merging again adds nothing new.
        assert histctl(["merge", other_path, export_path]) == 0
        assert len(History(path=other_path)) == 1
