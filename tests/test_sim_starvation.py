"""Simulation tests for induced starvation, weak/strong immunity, and scale.

Deadlock and immunity assertions quantify over *all* bounded
interleavings via :class:`repro.sim.Explorer` instead of sampling one
seeded schedule — the form of the paper's claim ("no future interleaving
re-manifests an archived pattern") that a single lucky seed cannot test.
"""

from __future__ import annotations


from repro.core.config import DimmunixConfig, STRONG_IMMUNITY
from repro.core.signature import STARVATION, Signature
from repro.sim import (Acquire, Compute, DimmunixBackend, Explorer,
                       NullBackend, Release, SimScheduler, call_site,
                       philosopher_program)
from repro.sim.actions import call_site as site


def build_philosopher_table(backend, seats=5, meals=1, seed=0):
    scheduler = SimScheduler(backend=backend, seed=seed)
    forks = [scheduler.new_lock(f"fork-{i}") for i in range(seats)]
    for seat in range(seats):
        scheduler.add_thread(philosopher_program(
            forks[seat], forks[(seat + 1) % seats], seat,
            think_time=0.0, eat_time=0.001, meals=meals))
    return scheduler


class TestPhilosopherImmunity:
    def test_multi_thread_signature_archived(self):
        backend = DimmunixBackend(config=DimmunixConfig.for_testing(detection_only=True))
        result = build_philosopher_table(backend).run()
        assert result.deadlocked
        assert len(backend.history) == 1
        signature = backend.history.signatures()[0]
        assert signature.size == 5

    def test_immune_run_completes(self):
        backend = DimmunixBackend(config=DimmunixConfig.for_testing(detection_only=True))
        build_philosopher_table(backend).run()
        immune = DimmunixBackend(config=DimmunixConfig.for_testing(),
                                 history=backend.history)
        result = build_philosopher_table(immune, meals=2, seed=3).run()
        assert result.completed
        assert result.lock_ops == 5 * 2 * 2

    def test_immunity_over_all_bounded_interleavings(self):
        """The paper's claim, exhaustively: every NullBackend interleaving
        of a 3-seat table deadlocks, and with the archived signature *no*
        interleaving does."""
        vulnerable = Explorer(
            lambda: build_philosopher_table(NullBackend(), seats=3),
            name="philosophers-3").explore()
        assert vulnerable.exhausted
        assert vulnerable.deadlock_count >= 1

        learner = DimmunixBackend(config=DimmunixConfig.for_testing())
        assert build_philosopher_table(learner, seats=3).run().deadlocked
        assert len(learner.history) == 1

        prototype = DimmunixBackend(config=DimmunixConfig.for_testing(),
                                    history=learner.history)
        immune = Explorer(
            lambda: build_philosopher_table(prototype.fork(), seats=3),
            name="philosophers-3-immune").explore()
        assert immune.exhausted
        assert immune.deadlock_count == 0
        # Engine-backed exploration prunes redundant interleavings now
        # (DPOR is the default strategy), so some runs are cut rather
        # than completed; every run must be one or the other.
        assert immune.completed + immune.pruned_sleep == immune.runs

    def test_scales_to_many_threads(self):
        backend = DimmunixBackend(config=DimmunixConfig.for_testing(detection_only=True))
        build_philosopher_table(backend, seats=64).run()
        immune = DimmunixBackend(config=DimmunixConfig.for_testing(),
                                 history=backend.history)
        result = build_philosopher_table(immune, seats=256, seed=1).run()
        assert result.completed
        assert result.total_threads == 256


class TestInducedStarvation:
    def _starvation_history(self):
        """Two signatures that make each thread yield on the other's hold."""
        history_sigs = [
            Signature([call_site("get_c:1", "worker_a:0"),
                       call_site("get_b:1", "worker_b:0")], matching_depth=2),
            Signature([call_site("get_d:1", "worker_b:0"),
                       call_site("get_a:1", "worker_a:0")], matching_depth=2),
        ]
        return history_sigs

    def _build(self, backend):
        scheduler = SimScheduler(backend=backend, seed=0)
        lock_a = scheduler.new_lock("A")
        lock_b = scheduler.new_lock("B")
        lock_c = scheduler.new_lock("C")
        lock_d = scheduler.new_lock("D")

        def worker_a():
            yield Acquire(lock_a, site("get_a:1", "worker_a:0"))
            yield Compute(0.001)
            yield Acquire(lock_c, site("get_c:1", "worker_a:0"))
            yield Release(lock_c)
            yield Release(lock_a)

        def worker_b():
            yield Acquire(lock_b, site("get_b:1", "worker_b:0"))
            yield Compute(0.001)
            yield Acquire(lock_d, site("get_d:1", "worker_b:0"))
            yield Release(lock_d)
            yield Release(lock_b)

        scheduler.add_thread(worker_a, name="worker_a")
        scheduler.add_thread(worker_b, name="worker_b")
        return scheduler

    def test_weak_immunity_breaks_starvation_and_completes(self):
        backend = DimmunixBackend(config=DimmunixConfig.for_testing())
        for signature in self._starvation_history():
            backend.history.add(signature)
        result = self._build(backend).run()
        assert result.completed
        stats = result.backend_stats
        assert stats["yield_decisions"] >= 2
        assert stats["starvations_broken"] >= 1
        # The starvation signature itself was archived for the future.
        assert any(sig.kind == STARVATION for sig in backend.history.signatures())

    def test_weak_immunity_completes_in_all_bounded_interleavings(self):
        """No interleaving may stall: whenever the poisoned history
        induces the mutual-yield starvation, the monitor must break it."""
        prototype = DimmunixBackend(config=DimmunixConfig.for_testing())
        for signature in self._starvation_history():
            prototype.history.add(signature)
        result = Explorer(lambda: self._build(prototype.fork()),
                          name="induced-starvation").explore()
        assert result.exhausted
        assert result.deadlock_count == 0
        # DPOR (now the engine-backed default) may cut pruned runs short.
        assert result.completed + result.pruned_sleep == result.runs
        assert result.runs > 1

    def test_strong_immunity_requests_restart(self):
        restarts = []
        config = DimmunixConfig.for_testing(immunity=STRONG_IMMUNITY)
        backend = DimmunixBackend(config=config)
        backend.dimmunix.monitor.restart_handler = \
            lambda sig, cycle: restarts.append(sig)
        for signature in self._starvation_history():
            backend.history.add(signature)
        scheduler = self._build(backend)
        scheduler.run()
        # The restart hook fired; with no actual restart the run then stalls.
        assert len(restarts) >= 1
        assert backend.dimmunix.stats.restarts_requested >= 1

    def test_starvation_signature_avoided_in_next_run(self):
        backend = DimmunixBackend(config=DimmunixConfig.for_testing())
        for signature in self._starvation_history():
            backend.history.add(signature)
        first = self._build(backend).run()
        assert first.completed
        # Second run with the enriched history (now containing the archived
        # starvation pattern) must also complete, with no *additional*
        # starvation conditions discovered.
        starvations_before = len([s for s in backend.history.signatures()
                                  if s.kind == STARVATION])
        backend2 = DimmunixBackend(config=DimmunixConfig.for_testing(),
                                   history=backend.history)
        second = self._build(backend2).run()
        assert second.completed
        starvations_after = len([s for s in backend2.history.signatures()
                                 if s.kind == STARVATION])
        assert starvations_after <= starvations_before + 1
