"""Unit tests for the utility subpackage (queue, ids, clocks, Peterson lock)."""

from __future__ import annotations

import threading

import pytest

from repro.util.clock import VirtualClock, WallClock
from repro.util.eventqueue import EventQueue
from repro.util.idalloc import IdAllocator
from repro.util.peterson import PetersonLock


class TestEventQueue:
    def test_fifo_order(self):
        queue = EventQueue()
        for i in range(5):
            queue.put(i)
        assert queue.drain() == [0, 1, 2, 3, 4]
        assert queue.drain() == []

    def test_bounded_queue_drops(self):
        queue = EventQueue(maxsize=2)
        assert queue.put(1)
        assert queue.put(2)
        assert not queue.put(3)
        assert queue.dropped == 1
        assert len(queue) == 2

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            EventQueue(maxsize=0)

    def test_drain_limit(self):
        queue = EventQueue()
        queue.extend(range(10))
        assert queue.drain(limit=3) == [0, 1, 2]
        assert len(queue) == 7

    def test_high_water_and_totals(self):
        queue = EventQueue()
        queue.extend(range(4))
        queue.drain()
        queue.put(99)
        assert queue.high_water_mark == 4
        assert queue.total_enqueued == 5

    def test_concurrent_producers(self):
        queue = EventQueue()

        def producer(base):
            for i in range(200):
                queue.put(base + i)

        threads = [threading.Thread(target=producer, args=(k * 1000,))
                   for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        items = queue.drain()
        assert len(items) == 800
        assert len(set(items)) == 800

    def test_clear(self):
        queue = EventQueue()
        queue.extend(range(3))
        queue.clear()
        assert not queue


class TestIdAllocator:
    def test_stable_ids(self):
        alloc = IdAllocator()
        first = alloc.get("x")
        assert alloc.get("x") == first
        assert alloc.get("y") == first + 1

    def test_lookup_and_key_of(self):
        alloc = IdAllocator(start=10)
        ident = alloc.get("x")
        assert ident == 10
        assert alloc.lookup("x") == 10
        assert alloc.lookup("missing") is None
        assert alloc.key_of(10) == "x"

    def test_release(self):
        alloc = IdAllocator()
        ident = alloc.get("x")
        alloc.release("x")
        assert alloc.lookup("x") is None
        assert alloc.key_of(ident) is None
        assert "x" not in alloc

    def test_len(self):
        alloc = IdAllocator()
        alloc.get("a")
        alloc.get("b")
        assert len(alloc) == 2


class TestClocks:
    def test_wall_clock_monotonic(self):
        clock = WallClock()
        assert clock.now() <= clock.now()

    def test_virtual_clock_advance(self):
        clock = VirtualClock()
        assert clock.now() == 0.0
        clock.advance(1.5)
        assert clock.now() == 1.5
        clock.advance_to(1.0)   # never goes backwards
        assert clock.now() == 1.5
        clock.advance_to(3.0)
        assert clock.now() == 3.0

    def test_virtual_clock_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)


class TestPetersonLock:
    def test_mutual_exclusion_two_threads(self):
        lock = PetersonLock(capacity=2)
        counter = {"value": 0}

        def worker(key):
            for _ in range(300):
                lock.acquire(key)
                current = counter["value"]
                counter["value"] = current + 1
                lock.release(key)

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter["value"] == 600

    def test_mutual_exclusion_four_threads(self):
        lock = PetersonLock(capacity=4)
        inside = []
        violations = []

        def worker(key):
            for _ in range(50):
                lock.acquire(key)
                inside.append(key)
                if len(inside) > 1:
                    violations.append(tuple(inside))
                inside.pop()
                lock.release(key)

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert violations == []

    def test_release_by_non_owner_raises(self):
        lock = PetersonLock(capacity=2)
        lock.acquire(1)
        with pytest.raises(RuntimeError):
            lock.release(2)
        lock.release(1)

    def test_capacity_exhaustion(self):
        lock = PetersonLock(capacity=1, auto_register=True)
        lock.acquire(7)
        lock.release(7)
        with pytest.raises(RuntimeError):
            lock.register(8)

    def test_unregistered_thread_rejected_when_auto_off(self):
        lock = PetersonLock(capacity=2, auto_register=False)
        with pytest.raises(RuntimeError):
            lock.acquire(1)

    def test_holding_context_manager(self):
        lock = PetersonLock(capacity=2)
        with lock.holding(1):
            pass
        with lock.holding(2):
            pass
        assert lock.capacity == 2


class TestEngineStats:
    def test_bump_and_snapshot(self):
        from repro.core.stats import EngineStats
        stats = EngineStats()
        stats.bump("requests")
        stats.bump("requests", 2)
        snapshot = stats.snapshot()
        assert snapshot["requests"] == 3
        stats.reset()
        assert stats.requests == 0

    def test_yield_rate(self):
        from repro.core.stats import EngineStats
        stats = EngineStats()
        assert stats.yield_rate == 0.0
        stats.bump("requests", 10)
        stats.bump("yield_decisions", 3)
        assert stats.yield_rate == pytest.approx(0.3)
