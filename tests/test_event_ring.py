"""Tests for the ring-buffered event bus (the hot-path event path).

The engine's six emission points write tuple-encoded records into
per-thread bounded rings (:class:`~repro.core.events.EventBus`); the
monitor drains all rings in one batch, merged by global sequence number,
which preserves the paper's section 5.2 partial order (every event a
thread emitted before another of its own events is applied first).
"""

from __future__ import annotations

import threading

from repro.core.avoidance import AvoidanceEngine
from repro.core.callstack import CallStack
from repro.core.config import DimmunixConfig
from repro.core.events import (EV_ACQUIRED, EV_ALLOW, EV_CANCEL, EV_RELEASE,
                               EV_REQUEST, EV_YIELD, CODE_TO_TYPE, EventBus,
                               EventType, TYPE_TO_CODE, acquired_event,
                               cancel_event, decode_event, encode_event,
                               release_event, request_event, yield_event)
from repro.core.history import History
from repro.util.eventqueue import EventQueue


def stack():
    return CallStack.from_labels(["f:1", "g:2"])


class TestEncoding:
    def test_roundtrip_preserves_every_field(self):
        s = stack()
        for event in (request_event(1, 2, s, timestamp=3.5, mode="shared",
                                    capacity=4),
                      yield_event(1, 2, s, causes=((7, 8, s),)),
                      acquired_event(1, 2, s),
                      release_event(1, 2),
                      cancel_event(1, 2)):
            decoded = decode_event(encode_event(event))
            assert decoded == event
            assert decoded.seq == event.seq

    def test_code_tables_are_inverse(self):
        for code, event_type in enumerate(CODE_TO_TYPE):
            assert TYPE_TO_CODE[event_type] == code
        assert CODE_TO_TYPE[EV_REQUEST] is EventType.REQUEST
        assert CODE_TO_TYPE[EV_ALLOW] is EventType.ALLOW
        assert CODE_TO_TYPE[EV_YIELD] is EventType.YIELD
        assert CODE_TO_TYPE[EV_ACQUIRED] is EventType.ACQUIRED
        assert CODE_TO_TYPE[EV_RELEASE] is EventType.RELEASE
        assert CODE_TO_TYPE[EV_CANCEL] is EventType.CANCEL


class TestEventBus:
    def test_emit_then_drain_decodes_in_order(self):
        bus = EventBus()
        s = stack()
        bus.emit(EV_REQUEST, 1, 10, s)
        bus.emit(EV_ALLOW, 1, 10, s)
        bus.emit(EV_ACQUIRED, 1, 10, s)
        events = bus.drain()
        assert [e.type for e in events] == [EventType.REQUEST,
                                            EventType.ALLOW,
                                            EventType.ACQUIRED]
        assert events[0].seq < events[1].seq < events[2].seq
        assert not bus

    def test_put_event_compat(self):
        bus = EventBus()
        event = request_event(3, 4, stack())
        assert bus.put(event)
        assert bus.drain() == [event]

    def test_bounded_ring_drops_newest_and_counts(self):
        bus = EventBus(ring_capacity=4)
        s = stack()
        accepted = [bus.emit(EV_REQUEST, 1, i, s) for i in range(7)]
        assert accepted == [True] * 4 + [False] * 3
        assert bus.dropped == 3
        assert len(bus) == 4
        # The accepted prefix survives, in order.
        assert [e.lock_id for e in bus.drain()] == [0, 1, 2, 3]

    def test_drain_limit_keeps_leftovers_in_order(self):
        bus = EventBus()
        s = stack()
        for i in range(10):
            bus.emit(EV_REQUEST, 1, i, s)
        first = bus.drain_raw(limit=4)
        second = bus.drain_raw()
        assert [r[3] for r in first] == [0, 1, 2, 3]
        assert [r[3] for r in second] == [4, 5, 6, 7, 8, 9]

    def test_watermarks_and_clear(self):
        bus = EventBus()
        s = stack()
        for i in range(5):
            bus.emit(EV_RELEASE, 1, i, s)
        assert bus.total_enqueued == 5
        assert bus.high_water_mark == 5
        assert bus.peek_size() == 5
        bus.clear()
        assert len(bus) == 0
        assert bus.drain() == []

    def test_rejects_silly_capacity(self):
        try:
            EventBus(ring_capacity=0)
            raised = False
        except ValueError:
            raised = True
        assert raised

    def test_concurrent_emit_drain_preserves_per_thread_order(self):
        """Property: batched draining loses nothing and keeps each
        producer's events in emission order, with a consumer draining
        concurrently with the producers."""
        producers, per_thread = 4, 2000
        bus = EventBus(ring_capacity=per_thread + 16)
        s = stack()
        start = threading.Barrier(producers + 1)
        done = threading.Event()

        def produce(thread_id: int) -> None:
            start.wait()
            for i in range(per_thread):
                bus.emit(EV_REQUEST, thread_id, i, s)

        collected = []

        def consume() -> None:
            start.wait()
            while not done.is_set() or bus:
                collected.extend(bus.drain_raw(limit=97))

        pool = [threading.Thread(target=produce, args=(tid,))
                for tid in range(1, producers + 1)]
        consumer = threading.Thread(target=consume)
        consumer.start()
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        done.set()
        consumer.join()

        assert bus.dropped == 0
        assert len(collected) == producers * per_thread
        by_thread = {tid: [] for tid in range(1, producers + 1)}
        for record in collected:
            by_thread[record[2]].append(record[3])
        for tid, payloads in by_thread.items():
            assert payloads == list(range(per_thread)), f"thread {tid}"
        # Each producer's seq numbers are strictly increasing too.
        seqs = {tid: [] for tid in by_thread}
        for record in collected:
            seqs[record[2]].append(record[0])
        for tid, values in seqs.items():
            assert values == sorted(values), f"thread {tid}"


class TestLegacyQueueCompat:
    def test_eventqueue_emit_delivers_event_objects(self):
        queue = EventQueue()
        s = stack()
        queue.emit(EV_REQUEST, 5, 6, s, (), 1.25, "shared", 3)
        queue.emit(EV_CANCEL, 5, 6)
        first, second = queue.drain()
        assert first.type is EventType.REQUEST
        assert (first.thread_id, first.lock_id) == (5, 6)
        assert first.timestamp == 1.25
        assert first.mode == "shared"
        assert first.capacity == 3
        assert second.type is EventType.CANCEL

    def test_engine_accepts_legacy_queue(self):
        queue = EventQueue()
        engine = AvoidanceEngine(History(path=None, autosave=False),
                                 DimmunixConfig.for_testing(),
                                 event_queue=queue)
        s = stack()
        engine.request(1, 10, s)
        engine.acquired(1, 10, s)
        engine.release(1, 10)
        types = [e.type for e in queue.drain()]
        assert types == [EventType.REQUEST, EventType.ALLOW,
                         EventType.ACQUIRED, EventType.RELEASE]


class TestEngineRingPath:
    def test_engine_default_bus_is_ring_buffered(self):
        engine = AvoidanceEngine(History(path=None, autosave=False),
                                 DimmunixConfig.for_testing())
        assert isinstance(engine.events, EventBus)
        assert engine.events.ring_capacity == engine.config.event_ring_size

    def test_engine_emissions_drain_as_encoded_records(self):
        engine = AvoidanceEngine(History(path=None, autosave=False),
                                 DimmunixConfig.for_testing())
        s = stack()
        engine.request(1, 10, s)
        engine.acquired(1, 10, s)
        engine.release(1, 10)
        records = engine.events.drain_raw()
        assert [r[1] for r in records] == [EV_REQUEST, EV_ALLOW,
                                           EV_ACQUIRED, EV_RELEASE]
        assert all(r[2] == 1 and r[3] == 10 for r in records)
