"""Tests for the ring-buffered event bus (the hot-path event path).

The engine's six emission points write tuple-encoded records into
per-thread bounded rings (:class:`~repro.core.events.EventBus`); the
monitor drains all rings in one batch, merged by global sequence number,
which preserves the paper's section 5.2 partial order (every event a
thread emitted before another of its own events is applied first).
"""

from __future__ import annotations

import threading

from repro.core.avoidance import AvoidanceEngine
from repro.core.callstack import CallStack
from repro.core.config import DimmunixConfig
from repro.core.events import (EV_ACQUIRED, EV_ALLOW, EV_CANCEL, EV_RELEASE,
                               EV_REQUEST, EV_YIELD, CODE_TO_TYPE, EventBus,
                               EventType, TYPE_TO_CODE, acquired_event,
                               cancel_event, decode_event, encode_event,
                               release_event, request_event, yield_event)
from repro.core.history import History
from repro.util.eventqueue import EventQueue


def stack():
    return CallStack.from_labels(["f:1", "g:2"])


class TestEncoding:
    def test_roundtrip_preserves_every_field(self):
        s = stack()
        for event in (request_event(1, 2, s, timestamp=3.5, mode="shared",
                                    capacity=4),
                      yield_event(1, 2, s, causes=((7, 8, s),)),
                      acquired_event(1, 2, s),
                      release_event(1, 2),
                      cancel_event(1, 2)):
            decoded = decode_event(encode_event(event))
            assert decoded == event
            assert decoded.seq == event.seq

    def test_code_tables_are_inverse(self):
        for code, event_type in enumerate(CODE_TO_TYPE):
            assert TYPE_TO_CODE[event_type] == code
        assert CODE_TO_TYPE[EV_REQUEST] is EventType.REQUEST
        assert CODE_TO_TYPE[EV_ALLOW] is EventType.ALLOW
        assert CODE_TO_TYPE[EV_YIELD] is EventType.YIELD
        assert CODE_TO_TYPE[EV_ACQUIRED] is EventType.ACQUIRED
        assert CODE_TO_TYPE[EV_RELEASE] is EventType.RELEASE
        assert CODE_TO_TYPE[EV_CANCEL] is EventType.CANCEL


class TestEventBus:
    def test_emit_then_drain_decodes_in_order(self):
        bus = EventBus()
        s = stack()
        bus.emit(EV_REQUEST, 1, 10, s)
        bus.emit(EV_ALLOW, 1, 10, s)
        bus.emit(EV_ACQUIRED, 1, 10, s)
        events = bus.drain()
        assert [e.type for e in events] == [EventType.REQUEST,
                                            EventType.ALLOW,
                                            EventType.ACQUIRED]
        assert events[0].seq < events[1].seq < events[2].seq
        assert not bus

    def test_put_event_compat(self):
        # put() re-stamps with a bus-owned seq (the bus needs a contiguous
        # sequence space for its ordering guarantee); every other field of
        # the Event round-trips.
        bus = EventBus()
        event = request_event(3, 4, stack())
        assert bus.put(event)
        (drained,) = bus.drain()
        assert drained.seq == 1
        assert (drained.type, drained.thread_id, drained.lock_id,
                drained.stack, drained.causes, drained.timestamp,
                drained.mode, drained.capacity) == (
            event.type, event.thread_id, event.lock_id, event.stack,
            event.causes, event.timestamp, event.mode, event.capacity)

    def test_bounded_ring_drops_newest_and_counts(self):
        bus = EventBus(ring_capacity=4)
        s = stack()
        accepted = [bus.emit(EV_REQUEST, 1, i, s) for i in range(7)]
        assert accepted == [True] * 4 + [False] * 3
        assert bus.dropped == 3
        assert len(bus) == 4
        # The accepted prefix survives, in order.
        assert [e.lock_id for e in bus.drain()] == [0, 1, 2, 3]

    def test_drain_limit_keeps_leftovers_in_order(self):
        bus = EventBus()
        s = stack()
        for i in range(10):
            bus.emit(EV_REQUEST, 1, i, s)
        first = bus.drain_raw(limit=4)
        second = bus.drain_raw()
        assert [r[3] for r in first] == [0, 1, 2, 3]
        assert [r[3] for r in second] == [4, 5, 6, 7, 8, 9]

    def test_watermarks_and_clear(self):
        bus = EventBus()
        s = stack()
        for i in range(5):
            bus.emit(EV_RELEASE, 1, i, s)
        assert bus.total_enqueued == 5
        assert bus.high_water_mark == 5
        assert bus.peek_size() == 5
        bus.clear()
        assert len(bus) == 0
        assert bus.drain() == []

    def test_rejects_silly_capacity(self):
        try:
            EventBus(ring_capacity=0)
            raised = False
        except ValueError:
            raised = True
        assert raised

    def test_concurrent_emit_drain_preserves_per_thread_order(self):
        """Property: batched draining loses nothing and keeps each
        producer's events in emission order, with a consumer draining
        concurrently with the producers."""
        producers, per_thread = 4, 2000
        bus = EventBus(ring_capacity=per_thread + 16)
        s = stack()
        start = threading.Barrier(producers + 1)
        done = threading.Event()

        def produce(thread_id: int) -> None:
            start.wait()
            for i in range(per_thread):
                bus.emit(EV_REQUEST, thread_id, i, s)

        collected = []

        def consume() -> None:
            start.wait()
            while not done.is_set() or bus:
                collected.extend(bus.drain_raw(limit=97))

        pool = [threading.Thread(target=produce, args=(tid,))
                for tid in range(1, producers + 1)]
        consumer = threading.Thread(target=consume)
        consumer.start()
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        done.set()
        consumer.join()

        assert bus.dropped == 0
        assert len(collected) == producers * per_thread
        by_thread = {tid: [] for tid in range(1, producers + 1)}
        for record in collected:
            by_thread[record[2]].append(record[3])
        for tid, payloads in by_thread.items():
            assert payloads == list(range(per_thread)), f"thread {tid}"
        # Each producer's seq numbers are strictly increasing too.
        seqs = {tid: [] for tid in by_thread}
        for record in collected:
            seqs[record[2]].append(record[0])
        for tid, values in seqs.items():
            assert values == sorted(values), f"thread {tid}"

    def test_cross_drain_global_seq_order_property(self):
        """Property (the §5.2 total order, across drain boundaries): with
        concurrent emitters and arbitrary ``drain_raw(limit=...)`` cut
        points, the concatenation of all drained batches is in strictly
        increasing global seq order, nothing is lost, and no seq slot is
        ever given up for lost.  Fails on pre-PR-7 code, where a record
        could be drained before an earlier-seq record had landed."""
        import random
        import sys

        producers, per_thread = 4, 1500
        bus = EventBus(ring_capacity=per_thread + 16)
        s = stack()
        start = threading.Barrier(producers + 1)
        done = threading.Event()
        rng = random.Random(0x5152)

        def produce(thread_id: int) -> None:
            start.wait()
            for i in range(per_thread):
                bus.emit(EV_REQUEST, thread_id, i, s)

        batches = []

        def consume() -> None:
            start.wait()
            while not done.is_set() or bus:
                batches.append(bus.drain_raw(limit=rng.randrange(1, 120)))
            batches.append(bus.drain_raw())

        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)  # force frequent preemption
        try:
            pool = [threading.Thread(target=produce, args=(tid,))
                    for tid in range(1, producers + 1)]
            consumer = threading.Thread(target=consume)
            consumer.start()
            for thread in pool:
                thread.start()
            for thread in pool:
                thread.join()
            done.set()
            consumer.join()
        finally:
            sys.setswitchinterval(old_interval)

        collected = [record for batch in batches for record in batch]
        assert len(collected) == producers * per_thread
        seqs = [record[0] for record in collected]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        # Seq space is contiguous: drops never allocate, so none skipped.
        assert seqs == list(range(1, len(seqs) + 1))
        assert bus.seq_gaps_skipped == 0
        assert bus.stragglers == 0
        assert bus.total_drained == len(collected)

    def test_peek_size_consistent_with_enqueued_minus_drained(self):
        """The documented peek_size() envelope: with the consumer reading
        ``peek_size()`` *before* ``total_enqueued`` (rings bump ``total``
        before appending), ``peek_size() <= total_enqueued -
        total_drained`` at every instant, with equality once producers
        are quiescent; the lifetime counters only grow."""
        producers, per_thread = 3, 1200
        bus = EventBus(ring_capacity=per_thread + 16)
        s = stack()
        start = threading.Barrier(producers + 1)
        done = threading.Event()

        def produce(thread_id: int) -> None:
            start.wait()
            for i in range(per_thread):
                bus.emit(EV_ACQUIRED, thread_id, i, s)

        drained_count = 0
        violations = []
        monotone = []

        def consume() -> None:
            nonlocal drained_count
            last_enqueued = last_drained = 0
            start.wait()
            while not done.is_set() or bus:
                drained = bus.total_drained  # consumer-owned, stable here
                backlog = bus.peek_size()
                enqueued = bus.total_enqueued
                if backlog > enqueued - drained:
                    violations.append((backlog, enqueued, drained))
                if enqueued < last_enqueued or drained < last_drained:
                    monotone.append((enqueued, drained))
                last_enqueued, last_drained = enqueued, drained
                drained_count += len(bus.drain_raw(limit=64))

        pool = [threading.Thread(target=produce, args=(tid,))
                for tid in range(1, producers + 1)]
        consumer = threading.Thread(target=consume)
        consumer.start()
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        done.set()
        consumer.join()

        assert not violations, violations[:5]
        assert not monotone, monotone[:5]
        assert drained_count == producers * per_thread
        assert bus.peek_size() == 0
        assert bus.total_enqueued - bus.total_drained == 0

    def test_dead_thread_rings_are_retired_but_counters_survive(self):
        """Rings of terminated threads are retired during drain, and a
        later thread (which may recycle the OS ident) starts from fresh
        counters while the bus-level lifetime totals keep the retired
        rings' contributions.  Pre-PR-7, rings were keyed by ident and
        lived (and leaked) forever."""
        bus = EventBus(ring_capacity=4)
        s = stack()

        def burst(thread_id: int) -> None:
            for i in range(6):  # 4 land, 2 drop
                bus.emit(EV_REQUEST, thread_id, i, s)

        for generation in range(5):
            thread = threading.Thread(target=burst, args=(generation,))
            thread.start()
            thread.join()
            assert len(bus.drain_raw()) == 4
        # All producer threads are dead and drained: every ring retires.
        bus.drain_raw()
        assert bus.ring_count == 0
        # Lifetime counters still include the retired rings.
        assert bus.total_enqueued == 20
        assert bus.dropped == 10
        assert bus.total_drained == 20
        assert bus.high_water_mark == 20  # 5 rings x high-water 4


class TestLegacyQueueCompat:
    def test_eventqueue_emit_delivers_event_objects(self):
        queue = EventQueue()
        s = stack()
        queue.emit(EV_REQUEST, 5, 6, s, (), 1.25, "shared", 3)
        queue.emit(EV_CANCEL, 5, 6)
        first, second = queue.drain()
        assert first.type is EventType.REQUEST
        assert (first.thread_id, first.lock_id) == (5, 6)
        assert first.timestamp == 1.25
        assert first.mode == "shared"
        assert first.capacity == 3
        assert second.type is EventType.CANCEL

    def test_engine_accepts_legacy_queue(self):
        queue = EventQueue()
        engine = AvoidanceEngine(History(path=None, autosave=False),
                                 DimmunixConfig.for_testing(),
                                 event_queue=queue)
        s = stack()
        engine.request(1, 10, s)
        engine.acquired(1, 10, s)
        engine.release(1, 10)
        types = [e.type for e in queue.drain()]
        # Granted fast-path requests publish only the superseding ALLOW.
        assert types == [EventType.ALLOW,
                         EventType.ACQUIRED, EventType.RELEASE]


class TestEngineRingPath:
    def test_engine_default_bus_is_ring_buffered(self):
        engine = AvoidanceEngine(History(path=None, autosave=False),
                                 DimmunixConfig.for_testing())
        assert isinstance(engine.events, EventBus)
        assert engine.events.ring_capacity == engine.config.event_ring_size

    def test_engine_emissions_drain_as_encoded_records(self):
        engine = AvoidanceEngine(History(path=None, autosave=False),
                                 DimmunixConfig.for_testing())
        s = stack()
        engine.request(1, 10, s)
        engine.acquired(1, 10, s)
        engine.release(1, 10)
        records = engine.events.drain_raw()
        assert [r[1] for r in records] == [EV_ALLOW,
                                           EV_ACQUIRED, EV_RELEASE]
        assert all(r[2] == 1 and r[3] == 10 for r in records)
