"""Tests for daemon federation (HistoryServer --upstream).

Stands up a tiny spine-and-leaves topology in-process: leaf daemons
subscribe to a spine daemon, so signatures and control records published
to any leaf reach clients of every other leaf.  Also proves the
degradation contract — a dead spine leaves each leaf serving local
clients, with the failure counted, and federation resumes when the
spine returns.
"""

from __future__ import annotations

import time

import pytest

from repro.core.callstack import CallStack
from repro.core.signature import Signature
from repro.share import HistoryServer, SocketChannel, make_control


def make_signature(label: str) -> Signature:
    return Signature([CallStack.from_labels([f"{label}:1", "main:0"]),
                      CallStack.from_labels([f"{label}:2", "main:0"])])


def wait_until(predicate, timeout=8.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture
def spine_and_leaves():
    """A spine daemon with two leaf daemons federating through it."""
    spine = HistoryServer(host="127.0.0.1", port=0).start()
    leaves = [HistoryServer(host="127.0.0.1", port=0,
                            upstreams=[spine.spec],
                            federation_interval=0.05).start()
              for _ in range(2)]
    yield spine, leaves
    for leaf in leaves:
        leaf.stop()
    spine.stop()


class TestFederatedSignatures:
    def test_leaf_to_leaf_via_spine(self, spine_and_leaves):
        spine, (leaf1, leaf2) = spine_and_leaves
        a = SocketChannel(("tcp", "127.0.0.1", leaf1.port))
        b = SocketChannel(("tcp", "127.0.0.1", leaf2.port))
        assert a.wait_synced(5) and b.wait_synced(5)
        a.publish(make_signature("cross-host"))
        received = []
        assert wait_until(lambda: received.extend(b.poll()) or received)
        assert len(received) == 1
        # The spine holds it too — any future leaf inherits it.
        assert wait_until(lambda: len(spine.history) == 1)
        a.close(), b.close()

    def test_spine_pushes_down_to_leaves(self, spine_and_leaves):
        spine, (leaf1, _) = spine_and_leaves
        top = SocketChannel(("tcp", "127.0.0.1", spine.port))
        top.publish(make_signature("from-above"))
        assert wait_until(lambda: len(leaf1.history) == 1)
        top.close()

    def test_late_leaf_inherits_spine_state(self, spine_and_leaves):
        spine, (leaf1, _) = spine_and_leaves
        a = SocketChannel(("tcp", "127.0.0.1", leaf1.port))
        a.publish(make_signature("pre-existing"))
        assert wait_until(lambda: len(spine.history) == 1)
        late = HistoryServer(host="127.0.0.1", port=0,
                             upstreams=[spine.spec],
                             federation_interval=0.05).start()
        try:
            assert wait_until(lambda: len(late.history) == 1)
        finally:
            late.stop()
        a.close()

    def test_no_echo_storm(self, spine_and_leaves):
        spine, (leaf1, _) = spine_and_leaves
        a = SocketChannel(("tcp", "127.0.0.1", leaf1.port))
        assert a.wait_synced(5)
        a.publish(make_signature("once"))
        assert wait_until(lambda: len(spine.history) == 1)
        time.sleep(0.3)        # several federation rounds
        # The publisher's own leaf never broadcasts the echo back.
        assert a.poll() == []
        assert len(leaf1.history) == 1
        a.close()


class TestFederatedControls:
    def test_disable_travels_leaf_to_leaf(self, spine_and_leaves):
        spine, (leaf1, leaf2) = spine_and_leaves
        signature = make_signature("badguy")
        a = SocketChannel(("tcp", "127.0.0.1", leaf1.port))
        b = SocketChannel(("tcp", "127.0.0.1", leaf2.port))
        assert a.wait_synced(5) and b.wait_synced(5)
        a.publish(signature)
        assert wait_until(lambda: len(b.poll()) == 1 or False)
        a.publish_control(make_control("disable", signature.fingerprint,
                                       clock=10, origin="ctl"))
        got = []
        assert wait_until(lambda: got.extend(b.poll_controls()) or got)
        assert got[0]["action"] == "disable"
        assert got[0]["fingerprint"] == signature.fingerprint
        a.close(), b.close()

    def test_late_joiner_snapshot_carries_controls(self, spine_and_leaves):
        spine, (leaf1, _) = spine_and_leaves
        signature = make_signature("held")
        a = SocketChannel(("tcp", "127.0.0.1", leaf1.port))
        a.publish(signature)
        a.publish_control(make_control("disable", signature.fingerprint,
                                       clock=5, origin="ctl"))
        assert wait_until(
            lambda: leaf1.status()["disabled_fingerprints"] == 1)
        late = SocketChannel(("tcp", "127.0.0.1", leaf1.port))
        assert late.wait_synced(5)
        assert len(late.poll()) == 1
        controls = late.poll_controls()
        assert [c["action"] for c in controls] == ["disable"]
        a.close(), late.close()

    def test_removed_fingerprint_stays_removed(self, spine_and_leaves):
        spine, (leaf1, _) = spine_and_leaves
        signature = make_signature("tombstoned")
        a = SocketChannel(("tcp", "127.0.0.1", leaf1.port))
        a.publish_control(make_control("remove", signature.fingerprint,
                                       clock=7, origin="ctl"))
        assert wait_until(lambda: leaf1.status()["controls"] == 1)
        b = SocketChannel(("tcp", "127.0.0.1", leaf1.port))
        b.publish(signature)
        time.sleep(0.2)
        assert len(leaf1.history) == 0
        a.close(), b.close()


class TestFederationDegradation:
    def test_dead_spine_leaves_local_immunity_working(self):
        spine = HistoryServer(host="127.0.0.1", port=0).start()
        spine_spec = spine.spec
        leaf = HistoryServer(host="127.0.0.1", port=0,
                             upstreams=[spine_spec],
                             federation_interval=0.05).start()
        try:
            assert wait_until(
                lambda: leaf.status().get("upstreams_connected") == 1)
            spine.stop()
            assert wait_until(
                lambda: leaf.status().get("upstreams_connected") == 0)
            # Local clients are unaffected.
            a = SocketChannel(("tcp", "127.0.0.1", leaf.port))
            b = SocketChannel(("tcp", "127.0.0.1", leaf.port))
            assert a.wait_synced(5) and b.wait_synced(5)
            a.publish(make_signature("still-local"))
            assert wait_until(lambda: len(b.poll()) == 1 or False)
            status = leaf.status()
            assert status["federation_errors"] >= 1
            assert status["upstreams"] == [spine_spec]
            a.close(), b.close()
        finally:
            leaf.stop()

    def test_reconnects_when_the_spine_returns(self, tmp_path):
        sock = str(tmp_path / "spine.sock")
        spine = HistoryServer(unix_path=sock).start()
        leaf = HistoryServer(host="127.0.0.1", port=0,
                             upstreams=[spine.spec],
                             federation_interval=0.05).start()
        try:
            assert wait_until(
                lambda: leaf.status().get("upstreams_connected") == 1)
            spine.stop()
            assert wait_until(
                lambda: leaf.status().get("upstreams_connected") == 0)
            # Publish while partitioned, then bring the spine back at the
            # same address.
            a = SocketChannel(("tcp", "127.0.0.1", leaf.port))
            a.publish(make_signature("during-partition"))
            assert wait_until(lambda: len(leaf.history) == 1)
            spine = HistoryServer(unix_path=sock).start()
            assert wait_until(
                lambda: leaf.status().get("upstreams_connected") == 1)
            # Fresh publishes flow upstream again after the reconnect.
            a.publish(make_signature("after-heal"))
            assert wait_until(lambda: len(spine.history) >= 1)
            a.close()
        finally:
            leaf.stop()
            spine.stop()
