"""Concurrency stress tests for the striped avoidance engine.

The engine no longer serializes every lock operation through one global
mutex: per-thread state is slot-owned, the cache is lock-striped, and only
the signature-matching slow path takes a mutex.  These tests hammer the
engine from many real threads and then check that the event stream it
emitted replays serially into a coherent, quiescent RAG and that the
statistics agree exactly with the serialized replay.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.avoidance import AvoidanceEngine
from repro.core.callstack import CallStack
from repro.core.config import DimmunixConfig
from repro.core.dimmunix import Dimmunix
from repro.core.events import EventType
from repro.core.history import History
from repro.core.rag import ResourceAllocationGraph
from repro.core.runtime_api import RuntimeCore
from repro.core.signature import Signature
from repro.instrument.locks import DimmunixLock
from repro.instrument.runtime import InstrumentationRuntime


def stack(*labels):
    return CallStack.from_labels(list(labels))


THREADS = 8
OPS = 400


def _build_engine(with_signatures: bool) -> AvoidanceEngine:
    history = History(path=None, autosave=False)
    if with_signatures:
        # Signatures over the workers' own stacks, so the matching slow
        # path (and its mutex) is exercised alongside the lock-free fast
        # path.
        for left in range(0, THREADS, 2):
            history.add(Signature(
                [stack(f"hot:{left}", "caller:0"),
                 stack(f"hot:{left + 1}", "caller:0")],
                matching_depth=2))
    return AvoidanceEngine(history, DimmunixConfig.for_testing())


def _hammer(engine: AvoidanceEngine, threads: int = THREADS,
            ops: int = OPS) -> None:
    """Drive request/acquired/release (+ yields/aborts) from real threads.

    Each worker owns a disjoint set of locks, so the native mutual
    exclusion the engine normally piggybacks on is preserved by
    construction; stacks overlap so Allowed sets and signature matching
    see real cross-thread contention.
    """
    barrier = threading.Barrier(threads)
    errors = []

    def work(worker: int) -> None:
        thread_id = worker + 1
        hot = stack(f"hot:{worker}", "caller:0", "main:0")
        cold = stack(f"cold:{worker % 3}", "caller:1", "main:0")
        barrier.wait()
        try:
            for op in range(ops):
                use = hot if op % 2 == 0 else cold
                lock_id = 100 * thread_id + (op % 5)
                outcome = engine.request(thread_id, lock_id, use)
                if outcome.is_yield:
                    # A real runtime would park; the stress driver aborts
                    # the yield and retries, exercising the forced-GO path.
                    engine.abort_yield(thread_id)
                    outcome = engine.request(thread_id, lock_id, use)
                    assert outcome.is_go
                engine.acquired(thread_id, lock_id, use)
                engine.release(thread_id, lock_id)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    pool = [threading.Thread(target=work, args=(w,)) for w in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert errors == []


class TestConcurrentStress:
    @pytest.mark.parametrize("with_signatures", [False, True])
    def test_event_stream_replays_to_quiescent_rag(self, with_signatures):
        engine = _build_engine(with_signatures)
        _hammer(engine)
        events = engine.events.drain()
        rag = ResourceAllocationGraph()
        rag.apply_batch(events)
        # Serialized replay of the concurrent stream: every hold, allow,
        # and request edge must have dissolved — the RAG is quiescent.
        for thread in rag.threads():
            assert thread.holds == {}, thread
            assert thread.allow is None, thread
            assert thread.request is None, thread
        for lock in rag.locks():
            assert lock.owner is None, lock
            assert lock.waiters == set(), lock

    @pytest.mark.parametrize("with_signatures", [False, True])
    def test_stats_identical_to_serialized_replay(self, with_signatures):
        engine = _build_engine(with_signatures)
        _hammer(engine)
        events = engine.events.drain()
        by_type = {}
        for event in events:
            by_type[event.type] = by_type.get(event.type, 0) + 1
        snap = engine.stats.snapshot()
        # REQUEST events are published only for requests that enter the
        # cover search; granted fast-path requests emit just the ALLOW.
        assert by_type.get(EventType.REQUEST, 0) <= snap["requests"]
        assert by_type.get(EventType.YIELD, 0) <= by_type.get(EventType.REQUEST, 0)
        assert snap["go_decisions"] == by_type.get(EventType.ALLOW, 0)
        assert snap["yield_decisions"] == by_type.get(EventType.YIELD, 0)
        assert snap["acquisitions"] == by_type.get(EventType.ACQUIRED, 0)
        assert snap["releases"] == by_type.get(EventType.RELEASE, 0)
        assert snap["acquisitions"] == snap["releases"] == THREADS * OPS
        # Every yield was aborted by the driver and re-granted with a
        # forced GO, so the decision counters must balance exactly.
        assert snap["aborted_yields"] == snap["yield_decisions"]
        assert snap["forced_go"] == snap["aborted_yields"]
        assert snap["requests"] == snap["go_decisions"] + snap["yield_decisions"]

    @pytest.mark.parametrize("with_signatures", [False, True])
    def test_cache_is_empty_after_stress(self, with_signatures):
        engine = _build_engine(with_signatures)
        _hammer(engine)
        snap = engine.cache.snapshot()
        assert snap["holders"] == {}
        assert snap["waiting"] == {}
        assert snap["yielding"] == {}
        assert snap["distinct_stacks"] == 0
        assert engine.cache.allowed_set_sizes() == {}


class TestRealLockStress:
    def test_instrumented_locks_with_immune_history(self):
        """Real DimmunixLocks, shared between threads, with the deadlock
        pattern already in the history: every thread must complete (the
        avoidance yields and wakes instead of deadlocking or hanging)."""
        history = History(path=None, autosave=False)
        config = DimmunixConfig.for_testing(yield_timeout=0.05)
        dimmunix = Dimmunix(config=config, history=history)
        runtime = InstrumentationRuntime(dimmunix)
        lock_a = DimmunixLock(runtime=runtime, name="A")
        lock_b = DimmunixLock(runtime=runtime, name="B")
        done = []
        errors = []

        def worker(first, second, rounds=40):
            try:
                for _ in range(rounds):
                    first.acquire()
                    second.acquire()
                    second.release()
                    first.release()
                done.append(1)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        # Ordered acquisition (no deadlock possible), many threads, with
        # the monitor polling concurrently.
        dimmunix.start()
        try:
            pool = [threading.Thread(target=worker, args=(lock_a, lock_b))
                    for _ in range(6)]
            for thread in pool:
                thread.start()
            for thread in pool:
                thread.join(timeout=30)
            assert all(not t.is_alive() for t in pool)
        finally:
            dimmunix.stop()
        assert errors == []
        assert len(done) == 6
        snap = dimmunix.stats.snapshot()
        assert snap["acquisitions"] == snap["releases"]


class TestRuntimeApiUnification:
    def test_both_runtimes_use_runtime_core(self):
        from repro.sim.backends import DimmunixBackend

        backend = DimmunixBackend()
        assert isinstance(backend.core, RuntimeCore)
        runtime = InstrumentationRuntime(Dimmunix(DimmunixConfig.for_testing()))
        assert isinstance(runtime.core, RuntimeCore)

    def test_core_release_wakes_through_registry(self):
        history = History(path=None, autosave=False)
        history.add(Signature([stack("lock:4", "update:1"),
                               stack("lock:4", "update:2")], matching_depth=2))
        dimmunix = Dimmunix(DimmunixConfig.for_testing(), history=history)
        core = dimmunix.runtime_core
        woken_ids = []
        dimmunix.register_waker(2, lambda: woken_ids.append(2))
        s1 = stack("lock:4", "update:1", "main:0")
        s2 = stack("lock:4", "update:2", "main:0")
        assert core.request(1, 2, s2).is_go
        core.acquired(1, 2, s2)
        assert core.request(2, 1, s1).is_yield
        woken = core.release(1, 2)
        assert woken == [2]
        assert woken_ids == [2]
        assert core.request(2, 1, s1).is_go


class TestPerThreadStateLifecycle:
    def test_thread_death_drops_engine_state(self):
        """Terminated threads must not accumulate engine slots, wake
        events, or wakers (thread-per-request servers would otherwise grow
        without bound)."""
        import gc

        dimmunix = Dimmunix(DimmunixConfig.for_testing())
        runtime = InstrumentationRuntime(dimmunix)
        lock = DimmunixLock(runtime=runtime, name="L")
        seen_ids = []

        def worker():
            lock.acquire()
            seen_ids.append(runtime.current_thread_id())
            lock.release()

        for _ in range(5):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        gc.collect()
        engine = dimmunix.engine
        assert len(engine._slots) == 0
        assert len(engine.cache._slots) == 0
        for thread_id in seen_ids:
            assert engine.cache.hold_count(thread_id, lock.lock_id) == 0

    def test_history_observers_are_weak(self):
        """A history outlives the engines attached to it; dead engines'
        indexes must not stay registered (or alive) as observers."""
        import gc

        history = History(path=None, autosave=False)
        for _ in range(3):
            engine = AvoidanceEngine(history, DimmunixConfig.for_testing())
            del engine
        gc.collect()
        # The next mutation prunes dead references.
        history.add(Signature([stack("a:1"), stack("b:2")], matching_depth=1))
        assert len(history._observers) == 0
        live = AvoidanceEngine(history, DimmunixConfig.for_testing())
        history.add(Signature([stack("c:3"), stack("d:4")], matching_depth=1))
        assert len(live.index) == 2


class TestLastAvoidedSignature:
    def test_most_recent_not_most_avoided(self):
        """Section 5.7: "disable the last avoided signature" must target
        the most *recently* avoided signature, even when another signature
        has been avoided far more often."""
        history = History(path=None, autosave=False)
        often = Signature([stack("lock:4", "update:1"),
                           stack("lock:4", "update:2")], matching_depth=2)
        often.avoidance_count = 99
        recent = Signature([stack("lock:9", "fetch:1"),
                            stack("lock:9", "fetch:2")], matching_depth=2)
        history.add(often)
        history.add(recent)
        engine = AvoidanceEngine(history, DimmunixConfig.for_testing())
        r1 = stack("lock:9", "fetch:1", "main:0")
        r2 = stack("lock:9", "fetch:2", "main:0")
        engine.request(1, 2, r2)
        engine.acquired(1, 2, r2)
        assert engine.request(2, 1, r1).is_yield
        # The yielding thread aborts; nobody is parked any more, so the
        # engine must rely on its explicitly tracked fingerprint.
        engine.abort_yield(2)
        last = engine.last_avoided_signature()
        assert last is not None
        assert last.fingerprint == recent.fingerprint
        assert often.avoidance_count > recent.avoidance_count

    def test_facade_disables_most_recent(self):
        history = History(path=None, autosave=False)
        often = Signature([stack("lock:4", "update:1"),
                           stack("lock:4", "update:2")], matching_depth=2)
        often.avoidance_count = 99
        recent = Signature([stack("lock:9", "fetch:1"),
                            stack("lock:9", "fetch:2")], matching_depth=2)
        history.add(often)
        history.add(recent)
        dimmunix = Dimmunix(DimmunixConfig.for_testing(), history=history)
        r1 = stack("lock:9", "fetch:1", "main:0")
        r2 = stack("lock:9", "fetch:2", "main:0")
        dimmunix.request(1, 2, r2)
        dimmunix.acquired(1, 2, r2)
        dimmunix.request(2, 1, r1)
        dimmunix.engine.abort_yield(2)
        disabled = dimmunix.disable_last_signature()
        assert disabled.fingerprint == recent.fingerprint
        assert history.get(recent.fingerprint).disabled
        assert not history.get(often.fingerprint).disabled
