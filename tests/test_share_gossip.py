"""Tests for the daemonless gossip transport (repro.share.gossip).

Exercises the mesh node in-process: spec parsing, digest-first
anti-entropy convergence, the CRDT merge rules (grow-only signatures,
LWW controls, remove-tombstones), and the never-raise failure policy
(unreachable peers, poisoned JSON).
"""

from __future__ import annotations

import json
import socket
import time

import pytest

from repro.core.callstack import CallStack
from repro.core.errors import ShareError
from repro.core.signature import Signature
from repro.share import GossipChannel, make_control, open_channel, parse_share_spec
from repro.share.gossip import parse_gossip_params


def make_signature(label: str) -> Signature:
    return Signature([CallStack.from_labels([f"{label}:1", "main:0"]),
                      CallStack.from_labels([f"{label}:2", "main:0"])])


def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture
def mesh():
    """Two connected nodes with the background round timer effectively off."""
    a = GossipChannel("127.0.0.1", 0, interval=60.0, node_name="a")
    b = GossipChannel("127.0.0.1", 0, peers=[a.bind], interval=60.0,
                      node_name="b")
    a.add_peer(b.bind)
    yield a, b
    a.close(), b.close()


# ---------------------------------------------------------------------------
# Spec parsing
# ---------------------------------------------------------------------------


class TestGossipSpecParsing:
    def test_full_spec(self):
        params = parse_gossip_params(
            "0.0.0.0:7400?peers=h1:7400,h2:7400&interval=0.2",
            "gossip://...")
        assert params == {"host": "0.0.0.0", "port": 7400,
                          "peers": ["h1:7400", "h2:7400"], "interval": 0.2}

    def test_no_peers_is_a_listen_only_node(self):
        assert parse_gossip_params("127.0.0.1:0", "spec") == {
            "host": "127.0.0.1", "port": 0, "peers": []}

    def test_missing_port_raises(self):
        with pytest.raises(ShareError):
            parse_gossip_params("justahost", "gossip://justahost")

    def test_bad_port_raises(self):
        with pytest.raises(ShareError):
            parse_gossip_params("host:notaport", "gossip://host:notaport")

    def test_peer_without_port_raises(self):
        with pytest.raises(ShareError):
            parse_gossip_params("h:1?peers=naked", "gossip://h:1?peers=naked")

    def test_unknown_params_name_the_known_set(self):
        with pytest.raises(ShareError) as err:
            parse_gossip_params("h:1?fanout=3", "gossip://h:1?fanout=3")
        assert "peers, interval" in str(err.value)

    def test_parse_share_spec_routes_gossip(self):
        scheme, params = parse_share_spec("gossip://127.0.0.1:0?peers=h:7400")
        assert scheme == "gossip"
        assert params["peers"] == ["h:7400"]

    def test_open_channel_builds_a_node(self):
        channel = open_channel("gossip://127.0.0.1:0", client_name="w1")
        try:
            assert isinstance(channel, GossipChannel)
            assert channel.bind.startswith("127.0.0.1:")
            assert not channel.bind.endswith(":0")  # ephemeral port resolved
        finally:
            channel.close()


# ---------------------------------------------------------------------------
# Anti-entropy convergence
# ---------------------------------------------------------------------------


class TestGossipConvergence:
    def test_push_reaches_the_peer_immediately(self, mesh):
        a, b = mesh
        a.publish(make_signature("rumor"))
        assert wait_until(lambda: len(b.poll()) == 1 or False)
        # No echo back to the publisher.
        assert a.poll() == []

    def test_round_repairs_a_missed_push(self, mesh):
        a, b = mesh
        # Inject state into `a` only, bypassing the push path, as if the
        # rumor had been lost to a partition.
        a._merge_record(make_signature("lost").to_dict(), remote=False)
        b.run_round()
        assert wait_until(lambda: len(b.poll()) == 1 or False)
        assert b.rounds == 1

    def test_digests_match_after_convergence(self, mesh):
        a, b = mesh
        a.publish(make_signature("one"))
        b.publish(make_signature("two"))
        assert wait_until(
            lambda: a._state_digest() == b._state_digest(), timeout=5.0)
        # A synchronized round costs the 2-message fast path and succeeds.
        before = a.rounds
        a.run_round()
        assert a.rounds == before + 1

    def test_snapshot_pulls_synchronously(self, mesh):
        a, b = mesh
        a.publish(make_signature("old"))
        # A fresh joiner snapshot sees the mesh state without waiting for
        # any background round.
        c = GossipChannel("127.0.0.1", 0, peers=[a.bind], interval=60.0)
        try:
            assert len(c.snapshot()) == 1
        finally:
            c.close()


# ---------------------------------------------------------------------------
# Control plane: LWW registers and tombstones
# ---------------------------------------------------------------------------


class TestGossipControls:
    def test_controls_propagate(self, mesh):
        a, b = mesh
        fp = make_signature("bad").fingerprint
        a.publish_control(make_control("disable", fp, clock=1, origin="a"))
        assert wait_until(
            lambda: any(c["fingerprint"] == fp for c in b.poll_controls()))

    def test_higher_clock_wins(self, mesh):
        a, b = mesh
        fp = "fp-lww"
        b._merge_control(make_control("disable", fp, clock=5, origin="b"),
                         remote=False)
        a.publish_control(make_control("enable", fp, clock=9, origin="a"))
        assert wait_until(
            lambda: b._controls.get(fp, {}).get("action") == "enable")

    def test_lower_clock_loses(self, mesh):
        a, b = mesh
        fp = "fp-stale"
        b._merge_control(make_control("enable", fp, clock=9, origin="b"),
                         remote=False)
        a.publish_control(make_control("disable", fp, clock=2, origin="a"))
        time.sleep(0.2)
        assert b._controls[fp]["action"] == "enable"
        assert b.poll_controls() == []

    def test_remove_tombstone_blocks_resurrection(self, mesh):
        a, b = mesh
        signature = make_signature("zombie")
        fp = signature.fingerprint
        b._merge_control(make_control("remove", fp, clock=3, origin="ctl"),
                         remote=False)
        a.publish(signature)
        time.sleep(0.2)
        assert b.poll() == []
        assert fp not in b._records


# ---------------------------------------------------------------------------
# Degradation: the mesh never raises into the application
# ---------------------------------------------------------------------------


class TestGossipDegradation:
    def test_unreachable_peer_is_counted_not_raised(self):
        node = GossipChannel("127.0.0.1", 0, peers=["127.0.0.1:1"],
                             interval=60.0)
        try:
            node.publish(make_signature("local-only"))   # push fails quietly
            assert node.io_errors >= 1
            node.run_round()
            assert node.round_failures == 1
            assert len(node.snapshot()) == 1             # local immunity kept
        finally:
            node.close()

    def test_poisoned_json_is_counted_and_survived(self, mesh):
        a, b = mesh
        host, _, port = a.bind.rpartition(":")
        with socket.create_connection((host, int(port)), timeout=2) as sock:
            sock.sendall(b"}{ not json at all\n")
        assert wait_until(lambda: a.io_errors >= 1)
        # And a structurally valid but non-dict line.
        with socket.create_connection((host, int(port)), timeout=2) as sock:
            sock.sendall(json.dumps([1, 2]).encode() + b"\n")
        assert wait_until(lambda: a.io_errors >= 2)
        # The node still gossips normally afterwards.
        b.publish(make_signature("after-poison"))
        assert wait_until(lambda: len(a.poll()) == 1 or False)

    def test_unknown_op_gets_an_error_reply(self, mesh):
        a, _ = mesh
        host, _, port = a.bind.rpartition(":")
        with socket.create_connection((host, int(port)), timeout=2) as sock:
            sock.sendall(json.dumps({"op": "teleport"}).encode() + b"\n")
            reply = json.loads(sock.makefile("r").readline())
        assert reply["op"] == "error"

    def test_bind_conflict_raises_share_error(self, mesh):
        a, _ = mesh
        _, _, port = a.bind.rpartition(":")
        with pytest.raises(ShareError):
            GossipChannel("127.0.0.1", int(port))

    def test_closed_node_is_inert(self):
        node = GossipChannel("127.0.0.1", 0, interval=60.0)
        node.close()
        node.publish(make_signature("late"))
        node.publish_control(make_control("disable", "fp", 1, "x"))
        assert node.poll() == []
        assert node.poll_controls() == []
        assert node.snapshot() == []
        node.close()                                     # idempotent


class TestGossipStatus:
    def test_status_fields(self, mesh):
        a, b = mesh
        a.publish(make_signature("s"))
        fp = make_signature("bad").fingerprint
        a.publish_control(make_control("disable", fp, clock=1, origin="a"))
        status = a.status()
        assert status["transport"] == "gossip"
        assert status["bind"] == a.bind
        assert status["signatures"] == 1
        assert status["controls"] == 1
        assert status["disabled_fingerprints"] == 1
        assert b.bind in status["peer_lag"]
        for key in ("rounds", "round_failures", "pushes", "io_errors",
                    "last_round_age", "node", "peers"):
            assert key in status

    def test_describe_round_trips_through_the_parser(self, mesh):
        a, _ = mesh
        scheme, params = parse_share_spec(a.describe())
        assert scheme == "gossip"
        assert params["peers"] == a.peers
