"""Tests for the allocation-free GO fast path.

Covers the three pooling/fast-path mechanisms: the singleton GO outcome,
the pooled per-thread/per-task parkers, the signature index's top-frame
miss filter, the sharded statistics counters, and the simulator's use of
the same ring-buffered event path as the real runtimes.
"""

from __future__ import annotations

import asyncio
import threading

from repro.core.avoidance import (AvoidanceEngine, Decision, GO_OUTCOME,
                                  MODE_INSTRUMENTATION_ONLY)
from repro.core.callstack import CallStack
from repro.core.config import DimmunixConfig
from repro.core.dimmunix import Dimmunix
from repro.core.events import EventBus
from repro.core.history import History
from repro.core.sigindex import SignatureIndex
from repro.core.signature import Signature
from repro.core.stats import EngineStats
from repro.instrument.aio import AsyncioParker
from repro.instrument.runtime import YieldManager
from repro.sim.backends import DimmunixBackend


def stack(labels=("f:1", "g:2")):
    return CallStack.from_labels(list(labels))


def make_engine(history=None):
    return AvoidanceEngine(history or History(path=None, autosave=False),
                           DimmunixConfig.for_testing())


class TestGoOutcomeSingleton:
    def test_grants_reuse_one_frozen_outcome(self):
        engine = make_engine()
        s = stack()
        first = engine.request(1, 10, s)
        engine.acquired(1, 10, s)
        engine.release(1, 10)
        second = engine.request(2, 20, s)
        assert first is GO_OUTCOME
        assert second is GO_OUTCOME
        assert first.decision is Decision.GO

    def test_instrumentation_only_mode_reuses_it_too(self):
        engine = make_engine()
        engine.mode = MODE_INSTRUMENTATION_ONLY
        assert engine.request(1, 10, stack()) is GO_OUTCOME

    def test_outcome_is_immutable(self):
        try:
            GO_OUTCOME.decision = Decision.YIELD
            mutated = True
        except Exception:
            mutated = False
        assert not mutated


class TestPooledThreadParker:
    def test_same_event_object_across_rounds(self):
        yields = YieldManager(Dimmunix(config=DimmunixConfig.for_testing()))
        first = yields.prepare(1)
        second = yields.prepare(1)
        assert first is second

    def test_event_is_reset_after_a_wake(self):
        yields = YieldManager(Dimmunix(config=DimmunixConfig.for_testing()))
        event = yields.prepare(1)
        yields.wake([1])
        assert event.is_set()
        again = yields.prepare(1)
        assert again is event
        assert not again.is_set()

    def test_never_shared_between_threads(self):
        yields = YieldManager(Dimmunix(config=DimmunixConfig.for_testing()))
        events = {}

        def grab(thread_id: int) -> None:
            events[thread_id] = yields.prepare(thread_id)

        pool = [threading.Thread(target=grab, args=(tid,))
                for tid in range(1, 9)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert len({id(event) for event in events.values()}) == 8

    def test_forget_releases_the_pooled_event(self):
        yields = YieldManager(Dimmunix(config=DimmunixConfig.for_testing()))
        event = yields.prepare(1)
        yields.forget(1)
        assert yields.prepare(1) is not event


class TestPooledTaskParker:
    def test_pending_future_is_reused_until_resolved(self):
        parker = AsyncioParker(Dimmunix(config=DimmunixConfig.for_testing()))

        async def scenario():
            parker.prepare(1)
            first = parker._futures[1][1]
            parker.prepare(1)
            assert parker._futures[1][1] is first, "pending future re-made"
            # A wake resolves the round; the next prepare must re-arm.
            parker._wake(1)
            assert first.done()
            parker.prepare(1)
            assert parker._futures[1][1] is not first

        asyncio.run(scenario())

    def test_distinct_tasks_get_distinct_futures(self):
        parker = AsyncioParker(Dimmunix(config=DimmunixConfig.for_testing()))

        async def scenario():
            parker.prepare(1)
            parker.prepare(2)
            assert parker._futures[1][1] is not parker._futures[2][1]

        asyncio.run(scenario())


class TestTopFrameMissFilter:
    def _signature(self, labels_a, labels_b, depth=2):
        return Signature([stack(labels_a), stack(labels_b)],
                         matching_depth=depth)

    def test_unknown_call_site_misses_without_bucket_lookup(self):
        history = History(path=None, autosave=False)
        history.add(self._signature(("a:1", "m:0"), ("b:2", "m:0")))
        index = SignatureIndex(history)
        assert index.candidates(stack(("zzz:9", "m:0"))) == []
        assert index.candidates(stack(("a:1", "m:0"))) != []

    def test_filter_tracks_add_remove_refresh_churn(self):
        history = History(path=None, autosave=False)
        index = SignatureIndex(history)
        signatures = [self._signature((f"a{i}:1", "m:0"), (f"b{i}:2", "m:0"))
                      for i in range(6)]
        for signature in signatures:
            history.add(signature)
            assert index.filter_consistent()
        history.remove(signatures[0].fingerprint)
        assert index.filter_consistent()
        signatures[1].matching_depth = 1
        index.refresh(signatures[1])
        assert index.filter_consistent()
        history.clear()
        assert index.filter_consistent()
        assert index.candidates(stack(("a2:1", "m:0"))) == []

    def test_engine_miss_path_returns_go(self):
        history = History(path=None, autosave=False)
        history.add(self._signature(("a:1", "m:0"), ("b:2", "m:0")))
        engine = make_engine(history)
        outcome = engine.request(1, 10, stack(("elsewhere:5", "m:0")))
        assert outcome is GO_OUTCOME


class TestShardedStats:
    def test_concurrent_bumps_sum_exactly(self):
        stats = EngineStats()
        threads, per_thread = 8, 5000

        def work():
            for _ in range(per_thread):
                stats.bump("requests")

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert stats.requests == threads * per_thread
        assert stats.snapshot()["requests"] == threads * per_thread

    def test_reset_zeroes_every_shard(self):
        stats = EngineStats()
        stats.bump("requests", 3)
        other = threading.Thread(target=lambda: stats.bump("releases", 2))
        other.start()
        other.join()
        stats.reset()
        assert stats.requests == 0
        assert stats.releases == 0

    def test_unknown_attribute_still_raises(self):
        stats = EngineStats()
        try:
            stats.no_such_counter
            raised = False
        except AttributeError:
            raised = True
        assert raised


class TestSimulatorRingPath:
    def test_sim_backend_emits_through_the_ring_bus(self):
        backend = DimmunixBackend(config=DimmunixConfig.for_testing())
        assert isinstance(backend.dimmunix.engine.events, EventBus)
        fork = backend.fork()
        assert isinstance(fork.dimmunix.engine.events, EventBus)
