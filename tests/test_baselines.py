"""Tests for the baseline avoidance approaches (gate locks, ghost locks, Rx)."""

from __future__ import annotations


from repro.baselines import (DetectionOnlyBackend, GateLockBackend,
                             GhostLockBackend, rx_retry)
from repro.core.config import DimmunixConfig
from repro.core.signature import Signature
from repro.sim import (DimmunixBackend, NullBackend, SimScheduler, call_site,
                       lock_order_program)


def run_lock_order_workload(backend, labels=("s1", "s2"), seed=0, iterations=1):
    scheduler = SimScheduler(backend=backend, seed=seed)
    lock_a = scheduler.new_lock("A")
    lock_b = scheduler.new_lock("B")
    scheduler.add_thread(lock_order_program(lock_a, lock_b, labels[0],
                                            hold_time=0.01,
                                            iterations=iterations))
    scheduler.add_thread(lock_order_program(lock_b, lock_a, labels[1],
                                            hold_time=0.01,
                                            iterations=iterations))
    return scheduler.run()


class TestGateLockBackend:
    def test_learns_gate_from_deadlock(self):
        backend = GateLockBackend()
        result = run_lock_order_workload(backend)
        assert result.deadlocked
        assert len(backend.gates) == 1
        assert backend.deadlocks_learned == 1

    def test_gate_prevents_reoccurrence(self):
        backend = GateLockBackend()
        run_lock_order_workload(backend)              # learns the gate
        result = run_lock_order_workload(backend)     # replay with the gate
        assert result.completed
        assert backend.denials >= 1

    def test_gate_serializes_safe_executions_too(self):
        # The coarse grain of gate locks: two threads taking the *same* path
        # (which can never deadlock) are still serialized.
        backend = GateLockBackend()
        run_lock_order_workload(backend)              # learn from s1/s2 deadlock
        denials_before = backend.denials
        scheduler = SimScheduler(backend=backend, seed=1)
        lock_a = scheduler.new_lock("A")
        lock_b = scheduler.new_lock("B")
        lock_c = scheduler.new_lock("C")
        scheduler.add_thread(lock_order_program(lock_a, lock_b, "s1",
                                                hold_time=0.01))
        scheduler.add_thread(lock_order_program(lock_c, lock_b, "s1",
                                                hold_time=0.01))
        result = scheduler.run()
        assert result.completed
        assert backend.denials > denials_before

    def test_learn_from_signature(self):
        backend = GateLockBackend()
        signature = Signature([call_site("lock:3", "update:s1"),
                               call_site("lock:3", "update:s2")])
        gate = backend.learn_from_signature(signature)
        assert len(gate.sites) >= 1
        assert backend.stats()["gates"] == 1

    def test_dimmunix_avoids_what_gates_serialize(self):
        # Contrast: Dimmunix does not serialize the same-path executions.
        detection = DimmunixBackend(
            config=DimmunixConfig.for_testing(detection_only=True))
        run_lock_order_workload(detection)
        immune = DimmunixBackend(config=DimmunixConfig.for_testing(),
                                 history=detection.history)
        scheduler = SimScheduler(backend=immune, seed=1)
        lock_a = scheduler.new_lock("A")
        lock_b = scheduler.new_lock("B")
        lock_c = scheduler.new_lock("C")
        scheduler.add_thread(lock_order_program(lock_a, lock_b, "s1",
                                                hold_time=0.01))
        scheduler.add_thread(lock_order_program(lock_c, lock_b, "s1",
                                                hold_time=0.01))
        result = scheduler.run()
        assert result.completed
        assert result.yields == 0


class TestGhostLockBackend:
    def test_learns_ghost_from_deadlock(self):
        backend = GhostLockBackend()
        result = run_lock_order_workload(backend)
        assert result.deadlocked
        assert len(backend.ghosts) == 1
        covered = backend.ghosts[0].lock_ids
        assert len(covered) == 2

    def test_ghost_prevents_reoccurrence_on_same_locks(self):
        backend = GhostLockBackend()
        scheduler = SimScheduler(backend=backend, seed=0)
        lock_a = scheduler.new_lock("A")
        lock_b = scheduler.new_lock("B")
        scheduler.add_thread(lock_order_program(lock_a, lock_b, "s1", hold_time=0.01))
        scheduler.add_thread(lock_order_program(lock_b, lock_a, "s2", hold_time=0.01))
        assert scheduler.run().deadlocked

        # Same locks (same identities), second run: the ghost lock serializes
        # access and prevents the reoccurrence.
        lock_a.reset()
        lock_b.reset()
        scheduler2 = SimScheduler(backend=backend, seed=0)
        scheduler2.register_lock(lock_a)
        scheduler2.register_lock(lock_b)
        scheduler2.add_thread(lock_order_program(lock_a, lock_b, "s1", hold_time=0.01))
        scheduler2.add_thread(lock_order_program(lock_b, lock_a, "s2", hold_time=0.01))
        result = scheduler2.run()
        assert result.completed
        assert backend.denials >= 1

    def test_ghost_does_not_transfer_to_other_locks(self):
        # Identity-based: a fresh pair of locks with the same buggy code is
        # NOT protected (this is the weakness Dimmunix's portable signatures
        # do not have).
        backend = GhostLockBackend()
        run_lock_order_workload(backend)
        result = run_lock_order_workload(backend, seed=1)
        assert result.deadlocked

    def test_stats_shape(self):
        backend = GhostLockBackend()
        run_lock_order_workload(backend)
        stats = backend.stats()
        assert set(stats) == {"ghosts", "ghost_denials", "deadlocks_learned"}


class TestDetectionOnlyBackend:
    def test_detects_but_never_avoids(self):
        backend = DetectionOnlyBackend()
        result = run_lock_order_workload(backend)
        assert result.deadlocked
        assert len(backend.history) == 1
        # Second run still deadlocks because yields are ignored.
        result2 = run_lock_order_workload(backend)
        assert result2.deadlocked
        assert backend.dimmunix.stats.yield_decisions == 0


class TestRxRetry:
    def test_retries_until_timing_avoids_deadlock(self):
        def factory(seed):
            scheduler = SimScheduler(backend=NullBackend(), seed=seed)
            lock_a = scheduler.new_lock("A")
            lock_b = scheduler.new_lock("B")
            # Thread 2 starts late enough that some schedules do not deadlock.
            scheduler.add_thread(lock_order_program(lock_a, lock_b, "s1",
                                                    hold_time=0.001))
            scheduler.add_thread(lock_order_program(lock_b, lock_a, "s2",
                                                    hold_time=0.001,
                                                    outside_time=0.001 * (seed % 3)))
            return scheduler

        outcome = rx_retry(factory, max_retries=5)
        assert outcome.attempts >= 1
        assert outcome.attempts == len(outcome.results)

    def test_deterministic_deadlock_defeats_rx(self):
        def factory(seed):
            scheduler = SimScheduler(backend=NullBackend(), seed=seed)
            lock_a = scheduler.new_lock("A")
            lock_b = scheduler.new_lock("B")
            scheduler.add_thread(lock_order_program(lock_a, lock_b, "s1",
                                                    hold_time=0.01))
            scheduler.add_thread(lock_order_program(lock_b, lock_a, "s2",
                                                    hold_time=0.01))
            return scheduler

        outcome = rx_retry(factory, max_retries=3)
        assert not outcome.succeeded
        assert outcome.attempts == 4
        assert outcome.deadlocks_encountered == 4
