"""Property tests for History persistence (save/load/merge, corruption,
concurrent autosave) — the edge cases the deadlock "immune memory"
depends on surviving."""

from __future__ import annotations

import json
import os
import string
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.callstack import CallStack, Frame
from repro.core.errors import HistoryError, HistoryFormatError
from repro.core.history import History
from repro.core.signature import DEADLOCK, STARVATION, Signature

_name = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)

frames = st.builds(Frame, function=_name, filename=_name,
                   lineno=st.integers(min_value=0, max_value=9999))

stacks = st.builds(CallStack, st.lists(frames, min_size=1, max_size=5))

signatures = st.builds(
    Signature,
    st.lists(stacks, min_size=1, max_size=4),
    kind=st.sampled_from([DEADLOCK, STARVATION]),
    matching_depth=st.integers(min_value=1, max_value=8),
)


def _fingerprints(history):
    return {sig.fingerprint for sig in history.signatures()}


class TestSaveLoadRoundTrip:
    @given(st.lists(signatures, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_explicit_save_load_preserves_signatures_and_state(self, sigs):
        import tempfile
        with tempfile.TemporaryDirectory() as workdir:
            path = os.path.join(workdir, "history.json")
            source = History(path=None, autosave=False)
            for signature in sigs:
                source.add(signature)
            if sigs:
                source.disable(sigs[0].fingerprint)
            source.save(path)

            restored = History(path=path, autosave=False)
            assert _fingerprints(restored) == _fingerprints(source)
            for signature in source.signatures():
                twin = restored.get(signature.fingerprint)
                assert twin is not None
                assert twin.disabled == signature.disabled
                assert twin.matching_depth == signature.matching_depth
                assert twin.kind == signature.kind

    @given(st.lists(signatures, max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_saved_file_is_valid_stable_json(self, sigs):
        import tempfile
        with tempfile.TemporaryDirectory() as workdir:
            path = os.path.join(workdir, "history.json")
            history = History(path=None, autosave=False)
            for signature in sigs:
                history.add(signature)
            history.save(path)
            with open(path, "r", encoding="utf-8") as handle:
                first = handle.read()
            payload = json.loads(first)
            assert payload["format_version"] == 1
            assert len(payload["signatures"]) == len(history)
            history.save(path)
            with open(path, "r", encoding="utf-8") as handle:
                assert handle.read() == first


class TestMergeProperties:
    @given(st.lists(signatures, max_size=6), st.lists(signatures, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_merge_is_union_and_idempotent(self, left, right):
        a = History(path=None, autosave=False)
        b = History(path=None, autosave=False)
        for signature in left:
            a.add(signature)
        for signature in right:
            b.add(signature)
        before = _fingerprints(a)
        added = a.merge(b.signatures())
        assert _fingerprints(a) == before | _fingerprints(b)
        assert added == len(_fingerprints(a)) - len(before)
        # Merging the same signatures again adds nothing new.
        assert a.merge(b.signatures()) == 0

    @given(st.lists(signatures, min_size=1, max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_merge_counts_duplicates_as_occurrences(self, sigs):
        history = History(path=None, autosave=False)
        for signature in sigs:
            history.add(signature)
        copies = [Signature.from_dict(sig.to_dict())
                  for sig in history.signatures()]
        history.merge(copies)
        for signature in history.signatures():
            assert signature.occurrence_count >= 2


class TestCorruptAndPartialFiles:
    def _history_from(self, tmp_path, content: str) -> History:
        path = tmp_path / "history.json"
        path.write_text(content, encoding="utf-8")
        return History(path=str(path), autosave=False)

    def test_invalid_json_raises_format_error(self, tmp_path):
        with pytest.raises(HistoryFormatError):
            self._history_from(tmp_path, "{not json at all")

    def test_truncated_file_raises_format_error(self, tmp_path):
        full = History(path=None, autosave=False)
        full.add(Signature.from_stacks([["a:1"], ["b:2"]], matching_depth=2))
        serialized = json.dumps(full.to_dict())
        with pytest.raises(HistoryFormatError):
            self._history_from(tmp_path, serialized[:len(serialized) // 2])

    def test_wrong_payload_shape_raises_format_error(self, tmp_path):
        with pytest.raises(HistoryFormatError):
            self._history_from(tmp_path, json.dumps({"no_signatures": []}))
        with pytest.raises(HistoryFormatError):
            self._history_from(tmp_path,
                               json.dumps({"signatures": "not-a-list"}))

    def test_unsupported_format_version_raises(self, tmp_path):
        with pytest.raises(HistoryFormatError):
            self._history_from(
                tmp_path, json.dumps({"format_version": 99, "signatures": []}))

    def test_missing_file_is_not_an_error(self, tmp_path):
        history = History(path=str(tmp_path / "absent.json"), autosave=False)
        assert len(history) == 0
        assert history.load() == 0

    def test_unreadable_directory_path_raises_history_error(self, tmp_path):
        with pytest.raises(HistoryError):
            History(path=None, autosave=False).save(str(tmp_path))


class TestConcurrentAutosave:
    def test_parallel_adds_leave_a_consistent_file(self, tmp_path):
        """Concurrent adds with autosave on: the file stays parseable and
        ends up containing every signature (atomic replace per save)."""
        path = str(tmp_path / "history.json")
        history = History(path=path, autosave=True)
        workers, per_worker = 8, 12
        barrier = threading.Barrier(workers)

        def add_batch(worker: int):
            barrier.wait()
            for index in range(per_worker):
                history.add(Signature.from_stacks(
                    [[f"w{worker}:{index}"], [f"peer{worker}:{index}"]],
                    matching_depth=2))

        threads = [threading.Thread(target=add_batch, args=(worker,))
                   for worker in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(history) == workers * per_worker
        reloaded = History(path=path, autosave=False)
        assert _fingerprints(reloaded) == _fingerprints(history)

    def test_autosave_add_remove_interleaved_with_reloads(self, tmp_path):
        path = str(tmp_path / "history.json")
        history = History(path=path, autosave=True)
        stop = threading.Event()
        errors = []

        def churn():
            index = 0
            while not stop.is_set():
                signature = Signature.from_stacks(
                    [[f"churn:{index}"], ["peer:0"]], matching_depth=2)
                history.add(signature)
                if index % 3 == 0:
                    history.remove(signature.fingerprint)
                index += 1

        def reload_loop():
            while not stop.is_set():
                try:
                    History(path=path, autosave=False)
                except HistoryError as exc:  # pragma: no cover - failure path
                    errors.append(exc)

        writer = threading.Thread(target=churn)
        reader = threading.Thread(target=reload_loop)
        writer.start()
        reader.start()
        import time
        time.sleep(0.3)
        stop.set()
        writer.join()
        reader.join()
        assert not errors, f"reload saw a torn file: {errors[0]}"
