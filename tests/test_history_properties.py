"""Property tests for History persistence (save/load/merge, corruption,
concurrent autosave, v1→v2 format migration) — the edge cases the
deadlock "immune memory" depends on surviving."""

from __future__ import annotations

import json
import os
import string
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.callstack import CallStack, Frame
from repro.core.errors import HistoryError, HistoryFormatError
from repro.core.history import History
from repro.core.signature import (DEADLOCK, EXCLUSIVE, SHARED, STARVATION,
                                  Signature)

_name = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)

frames = st.builds(Frame, function=_name, filename=_name,
                   lineno=st.integers(min_value=0, max_value=9999))

stacks = st.builds(CallStack, st.lists(frames, min_size=1, max_size=5))

signatures = st.builds(
    Signature,
    st.lists(stacks, min_size=1, max_size=4),
    kind=st.sampled_from([DEADLOCK, STARVATION]),
    matching_depth=st.integers(min_value=1, max_value=8),
)


@st.composite
def v2_signatures(draw):
    """Signatures with explicit per-stack acquisition modes (v2 shape)."""
    stack_list = draw(st.lists(stacks, min_size=1, max_size=4))
    modes = draw(st.lists(st.sampled_from([EXCLUSIVE, SHARED]),
                          min_size=len(stack_list), max_size=len(stack_list)))
    return Signature(stack_list, kind=draw(st.sampled_from([DEADLOCK,
                                                            STARVATION])),
                     matching_depth=draw(st.integers(min_value=1, max_value=8)),
                     modes=modes)


def _as_v1_payload(history: History) -> dict:
    """Downgrade a history's serialization to the v1 on-disk shape."""
    payload = history.to_dict()
    payload["format_version"] = 1
    for record in payload["signatures"]:
        record.pop("modes", None)
    return payload


def _fingerprints(history):
    return {sig.fingerprint for sig in history.signatures()}


class TestSaveLoadRoundTrip:
    @given(st.lists(signatures, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_explicit_save_load_preserves_signatures_and_state(self, sigs):
        import tempfile
        with tempfile.TemporaryDirectory() as workdir:
            path = os.path.join(workdir, "history.json")
            source = History(path=None, autosave=False)
            for signature in sigs:
                source.add(signature)
            if sigs:
                source.disable(sigs[0].fingerprint)
            source.save(path)

            restored = History(path=path, autosave=False)
            assert _fingerprints(restored) == _fingerprints(source)
            for signature in source.signatures():
                twin = restored.get(signature.fingerprint)
                assert twin is not None
                assert twin.disabled == signature.disabled
                assert twin.matching_depth == signature.matching_depth
                assert twin.kind == signature.kind

    @given(st.lists(signatures, max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_saved_file_is_valid_stable_json(self, sigs):
        import tempfile
        with tempfile.TemporaryDirectory() as workdir:
            path = os.path.join(workdir, "history.json")
            history = History(path=None, autosave=False)
            for signature in sigs:
                history.add(signature)
            history.save(path)
            with open(path, "r", encoding="utf-8") as handle:
                first = handle.read()
            payload = json.loads(first)
            assert payload["format_version"] == 2
            assert len(payload["signatures"]) == len(history)
            history.save(path)
            with open(path, "r", encoding="utf-8") as handle:
                assert handle.read() == first


class TestMergeProperties:
    @given(st.lists(signatures, max_size=6), st.lists(signatures, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_merge_is_union_and_idempotent(self, left, right):
        a = History(path=None, autosave=False)
        b = History(path=None, autosave=False)
        for signature in left:
            a.add(signature)
        for signature in right:
            b.add(signature)
        before = _fingerprints(a)
        added = a.merge(b.signatures())
        assert _fingerprints(a) == before | _fingerprints(b)
        assert added == len(_fingerprints(a)) - len(before)
        # Merging the same signatures again adds nothing new.
        assert a.merge(b.signatures()) == 0

    @given(st.lists(signatures, min_size=1, max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_merge_counts_duplicates_as_occurrences(self, sigs):
        history = History(path=None, autosave=False)
        for signature in sigs:
            history.add(signature)
        copies = [Signature.from_dict(sig.to_dict())
                  for sig in history.signatures()]
        history.merge(copies)
        for signature in history.signatures():
            assert signature.occurrence_count >= 2


class TestFormatMigration:
    """v1 histories (no modes, format_version 1) must keep loading and
    keep their identities; v2 histories must round-trip modes exactly."""

    @given(st.lists(signatures, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_v1_payload_loads_and_matches_v2_identities(self, sigs):
        import tempfile
        source = History(path=None, autosave=False)
        for signature in sigs:
            source.add(signature)
        payload = _as_v1_payload(source)
        with tempfile.TemporaryDirectory() as workdir:
            path = os.path.join(workdir, "v1.history")
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            restored = History(path=path, autosave=False)
        # All-exclusive signatures serialized without modes (the v1 shape)
        # reload to the same fingerprints — old immunity still matches.
        assert _fingerprints(restored) == _fingerprints(source)
        for signature in restored.signatures():
            assert signature.modes == (EXCLUSIVE,) * signature.size

    @given(st.lists(v2_signatures(), max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_v2_round_trip_preserves_modes(self, sigs):
        import tempfile
        source = History(path=None, autosave=False)
        for signature in sigs:
            source.add(signature)
        with tempfile.TemporaryDirectory() as workdir:
            path = os.path.join(workdir, "v2.history")
            source.save(path)
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            assert payload["format_version"] == 2
            restored = History(path=path, autosave=False)
        assert _fingerprints(restored) == _fingerprints(source)
        for signature in source.signatures():
            twin = restored.get(signature.fingerprint)
            assert twin is not None
            assert twin.modes == signature.modes
            assert twin == signature

    @given(st.lists(signatures, max_size=5), st.lists(v2_signatures(), max_size=5))
    @settings(max_examples=25, deadline=None)
    def test_merge_across_mixed_version_files_is_union(self, old_sigs, new_sigs):
        import tempfile
        v1_history = History(path=None, autosave=False)
        for signature in old_sigs:
            v1_history.add(signature)
        v2_history = History(path=None, autosave=False)
        for signature in new_sigs:
            v2_history.add(signature)
        with tempfile.TemporaryDirectory() as workdir:
            v1_path = os.path.join(workdir, "v1.history")
            v2_path = os.path.join(workdir, "v2.history")
            with open(v1_path, "w", encoding="utf-8") as handle:
                json.dump(_as_v1_payload(v1_history), handle)
            v2_history.save(v2_path)
            merged = History(path=None, autosave=False)
            merged.load(v1_path)
            merged.load(v2_path)
        expected = _fingerprints(v1_history) | _fingerprints(v2_history)
        assert _fingerprints(merged) == expected
        # Merging either file again is idempotent.
        with tempfile.TemporaryDirectory() as workdir:
            again = os.path.join(workdir, "again.history")
            v2_history.save(again)
            assert merged.merge(History.import_signatures(again)) == 0

    @given(v2_signatures())
    @settings(max_examples=25, deadline=None)
    def test_shared_modes_never_survive_a_v1_downgrade_silently(self, signature):
        """Stripping modes (a v1 writer) changes the fingerprint of any
        shared-mode signature — downgrades cannot silently alias."""
        record = signature.to_dict()
        record.pop("modes")
        downgraded = Signature.from_dict(record)
        if signature.multiholder:
            assert downgraded.fingerprint != signature.fingerprint
        else:
            assert downgraded.fingerprint == signature.fingerprint


class TestCorruptAndPartialFiles:
    def _history_from(self, tmp_path, content: str) -> History:
        path = tmp_path / "history.json"
        path.write_text(content, encoding="utf-8")
        return History(path=str(path), autosave=False)

    def test_invalid_json_raises_format_error(self, tmp_path):
        with pytest.raises(HistoryFormatError):
            self._history_from(tmp_path, "{not json at all")

    def test_truncated_file_raises_format_error(self, tmp_path):
        full = History(path=None, autosave=False)
        full.add(Signature.from_stacks([["a:1"], ["b:2"]], matching_depth=2))
        serialized = json.dumps(full.to_dict())
        with pytest.raises(HistoryFormatError):
            self._history_from(tmp_path, serialized[:len(serialized) // 2])

    def test_wrong_payload_shape_raises_format_error(self, tmp_path):
        with pytest.raises(HistoryFormatError):
            self._history_from(tmp_path, json.dumps({"no_signatures": []}))
        with pytest.raises(HistoryFormatError):
            self._history_from(tmp_path,
                               json.dumps({"signatures": "not-a-list"}))

    def test_unsupported_format_version_raises(self, tmp_path):
        with pytest.raises(HistoryFormatError):
            self._history_from(
                tmp_path, json.dumps({"format_version": 99, "signatures": []}))

    def test_missing_file_is_not_an_error(self, tmp_path):
        history = History(path=str(tmp_path / "absent.json"), autosave=False)
        assert len(history) == 0
        assert history.load() == 0

    def test_unreadable_directory_path_raises_history_error(self, tmp_path):
        with pytest.raises(HistoryError):
            History(path=None, autosave=False).save(str(tmp_path))


class TestConcurrentAutosave:
    def test_parallel_adds_leave_a_consistent_file(self, tmp_path):
        """Concurrent adds with autosave on: the file stays parseable and
        ends up containing every signature (atomic replace per save)."""
        path = str(tmp_path / "history.json")
        history = History(path=path, autosave=True)
        workers, per_worker = 8, 12
        barrier = threading.Barrier(workers)

        def add_batch(worker: int):
            barrier.wait()
            for index in range(per_worker):
                history.add(Signature.from_stacks(
                    [[f"w{worker}:{index}"], [f"peer{worker}:{index}"]],
                    matching_depth=2))

        threads = [threading.Thread(target=add_batch, args=(worker,))
                   for worker in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(history) == workers * per_worker
        reloaded = History(path=path, autosave=False)
        assert _fingerprints(reloaded) == _fingerprints(history)

    def test_autosave_add_remove_interleaved_with_reloads(self, tmp_path):
        path = str(tmp_path / "history.json")
        history = History(path=path, autosave=True)
        stop = threading.Event()
        errors = []

        def churn():
            index = 0
            while not stop.is_set():
                signature = Signature.from_stacks(
                    [[f"churn:{index}"], ["peer:0"]], matching_depth=2)
                history.add(signature)
                if index % 3 == 0:
                    history.remove(signature.fingerprint)
                index += 1

        def reload_loop():
            while not stop.is_set():
                try:
                    History(path=path, autosave=False)
                except HistoryError as exc:  # pragma: no cover - failure path
                    errors.append(exc)

        writer = threading.Thread(target=churn)
        reader = threading.Thread(target=reload_loop)
        writer.start()
        reader.start()
        import time
        time.sleep(0.3)
        stop.set()
        writer.join()
        reader.join()
        assert not errors, f"reload saw a torn file: {errors[0]}"


class TestCrossProcessAutosave:
    """Two writers of one history path must never truncate each other.

    Each ``History`` instance here stands in for a separate process (no
    shared in-memory state, only the file); the final test uses real
    subprocesses so the advisory-lock path is exercised across actual
    process boundaries."""

    @given(st.lists(signatures, min_size=1, max_size=5, unique_by=lambda s: s.fingerprint),
           st.lists(signatures, min_size=1, max_size=5, unique_by=lambda s: s.fingerprint),
           st.lists(st.booleans(), min_size=10, max_size=10))
    @settings(max_examples=20, deadline=None)
    def test_interleaved_autosaves_converge_to_the_union(self, left, right,
                                                         schedule):
        import tempfile
        with tempfile.TemporaryDirectory() as workdir:
            path = os.path.join(workdir, "shared.history")
            a = History(path=path, autosave=True)
            b = History(path=path, autosave=True)
            queues = {True: list(left), False: list(right)}
            writers = {True: a, False: b}
            for pick in schedule:
                if queues[pick]:
                    writers[pick].add(queues[pick].pop())
            for remaining in (True, False):
                for signature in queues[remaining]:
                    writers[remaining].add(signature)
            final = History(path=path, autosave=False)
            expected = ({s.fingerprint for s in left}
                        | {s.fingerprint for s in right})
            assert _fingerprints(final) == expected

    def test_save_merges_unknown_signatures_into_memory_too(self, tmp_path):
        path = str(tmp_path / "shared.history")
        a = History(path=path, autosave=True)
        b = History(path=path, autosave=True)
        sig_a = Signature.from_stacks([["a:1"], ["a:2"]], matching_depth=2)
        sig_b = Signature.from_stacks([["b:1"], ["b:2"]], matching_depth=2)
        a.add(sig_a)
        b.add(sig_b)
        # b's merge-on-save folded a's signature into b's memory as well:
        # the processes *converge*, not just their file.
        assert _fingerprints(b) == {sig_a.fingerprint, sig_b.fingerprint}

    def test_removal_is_not_resurrected_by_own_saves(self, tmp_path):
        path = str(tmp_path / "shared.history")
        history = History(path=path, autosave=True)
        keep = Signature.from_stacks([["keep:1"], ["keep:2"]], matching_depth=2)
        drop = Signature.from_stacks([["drop:1"], ["drop:2"]], matching_depth=2)
        history.add(keep)
        history.add(drop)
        history.remove(drop.fingerprint)
        # The save that follows the removal merges from disk; the tombstone
        # must keep the removed signature from coming back.
        history.add(Signature.from_stacks([["more:1"], ["more:2"]],
                                          matching_depth=2))
        assert drop.fingerprint not in _fingerprints(history)
        reloaded = History(path=path, autosave=False)
        assert drop.fingerprint not in _fingerprints(reloaded)

    def test_clear_overwrites_instead_of_merging(self, tmp_path):
        path = str(tmp_path / "shared.history")
        history = History(path=path, autosave=True)
        history.add(Signature.from_stacks([["x:1"], ["x:2"]], matching_depth=2))
        history.clear()
        assert len(History(path=path, autosave=False)) == 0

    def test_real_processes_autosaving_one_path(self, tmp_path):
        import subprocess
        import sys
        path = str(tmp_path / "shared.history")
        script = (
            "import sys\n"
            "from repro.core.history import History\n"
            "from repro.core.signature import Signature\n"
            "worker, path = sys.argv[1], sys.argv[2]\n"
            "history = History(path=path, autosave=True)\n"
            "for index in range(5):\n"
            "    history.add(Signature.from_stacks(\n"
            "        [[f'{worker}:{index}'], [f'peer-{worker}:{index}']],\n"
            "        matching_depth=2))\n"
        )
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        processes = [subprocess.Popen([sys.executable, "-c", script,
                                       f"w{index}", path], env=env)
                     for index in range(3)]
        for process in processes:
            assert process.wait(timeout=60) == 0
        final = History(path=path, autosave=False)
        assert len(final) == 15
