"""Tests for the real-thread lock wrappers and monkey-patching."""

from __future__ import annotations

import threading

import pytest

from repro.core.config import DimmunixConfig
from repro.core.dimmunix import Dimmunix
from repro.core.errors import InstrumentationError
from repro.instrument import patching
from repro.instrument.locks import (Condition, DimmunixCondition, DimmunixLock,
                                    DimmunixRLock, Lock, RLock)
from repro.instrument.runtime import (InstrumentationRuntime, ThreadRegistry,
                                      YieldManager, get_default_dimmunix,
                                      reset_default_dimmunix, set_default_dimmunix)


@pytest.fixture
def runtime(config, history):
    return InstrumentationRuntime(Dimmunix(config=config, history=history))


class TestDimmunixLock:
    def test_basic_acquire_release(self, runtime):
        lock = DimmunixLock(runtime=runtime)
        assert lock.acquire()
        assert lock.locked()
        lock.release()
        assert not lock.locked()

    def test_context_manager(self, runtime):
        lock = DimmunixLock(runtime=runtime)
        with lock:
            assert lock.locked()
        assert not lock.locked()

    def test_trylock_fails_when_held_elsewhere(self, runtime):
        lock = DimmunixLock(runtime=runtime)
        lock.acquire()
        result = []
        thread = threading.Thread(
            target=lambda: result.append(lock.acquire(blocking=False)))
        thread.start()
        thread.join()
        assert result == [False]
        lock.release()

    def test_timeout_expires(self, runtime):
        lock = DimmunixLock(runtime=runtime)
        lock.acquire()
        result = []
        thread = threading.Thread(
            target=lambda: result.append(lock.acquire(timeout=0.05)))
        thread.start()
        thread.join()
        assert result == [False]
        # A cancel event must have rolled the request back.
        assert runtime.engine.stats.cancels >= 1
        lock.release()

    def test_release_by_non_owner_raises(self, runtime):
        lock = DimmunixLock(runtime=runtime)
        lock.acquire()
        errors = []

        def bad_release():
            try:
                lock.release()
            except InstrumentationError as exc:
                errors.append(exc)

        thread = threading.Thread(target=bad_release)
        thread.start()
        thread.join()
        assert len(errors) == 1
        lock.release()

    def test_engine_sees_hold_state(self, runtime):
        lock = DimmunixLock(runtime=runtime)
        lock.acquire()
        holder = runtime.engine.cache.holder_of(lock.lock_id)
        assert holder == runtime.current_thread_id()
        lock.release()
        assert runtime.engine.cache.holder_of(lock.lock_id) is None

    def test_contention_serializes_correctly(self, runtime):
        lock = DimmunixLock(runtime=runtime)
        counter = {"v": 0}

        def worker():
            for _ in range(100):
                with lock:
                    counter["v"] += 1

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter["v"] == 400

    def test_repr_mentions_state(self, runtime):
        lock = DimmunixLock(runtime=runtime, name="mylock")
        assert "mylock" in repr(lock)


class TestDimmunixRLock:
    def test_reentrant_acquire(self, runtime):
        lock = DimmunixRLock(runtime=runtime)
        assert lock.acquire()
        assert lock.acquire()
        lock.release()
        assert lock.locked()
        lock.release()
        assert not lock.locked()

    def test_condition_wait_notify(self, runtime):
        condition = DimmunixCondition(runtime=runtime)
        flags = []

        def waiter():
            with condition:
                condition.wait(timeout=2.0)
                flags.append("woken")

        thread = threading.Thread(target=waiter)
        thread.start()
        # Give the waiter time to enter the wait.
        import time
        time.sleep(0.05)
        with condition:
            condition.notify_all()
        thread.join()
        assert flags == ["woken"]


class TestFactoriesAndPatching:
    def test_factories_use_default_runtime(self, config):
        reset_default_dimmunix()
        set_default_dimmunix(Dimmunix(config=config))
        lock = Lock()
        rlock = RLock()
        condition = Condition()
        assert isinstance(lock, DimmunixLock)
        assert isinstance(rlock, DimmunixRLock)
        assert isinstance(condition, DimmunixCondition)

    def test_get_default_creates_lazily(self):
        reset_default_dimmunix()
        runtime = get_default_dimmunix()
        assert runtime is get_default_dimmunix()

    def test_install_patches_threading(self, config):
        patching.install(Dimmunix(config=config))
        try:
            lock = threading.Lock()
            assert isinstance(lock, DimmunixLock)
            rlock = threading.RLock()
            assert isinstance(rlock, DimmunixRLock)
            assert patching.installed()
        finally:
            patching.uninstall()
        assert not patching.installed()
        assert not isinstance(threading.Lock(), DimmunixLock)

    def test_double_install_rejected(self, config):
        patching.install(Dimmunix(config=config))
        try:
            with pytest.raises(InstrumentationError):
                patching.install(Dimmunix(config=config))
        finally:
            patching.uninstall()

    def test_patched_context_manager(self, config):
        with patching.patched(config=config) as runtime:
            assert patching.installed()
            assert runtime.dimmunix.running
            lock = threading.Lock()
            with lock:
                pass
        assert not patching.installed()
        assert not runtime.dimmunix.running

    def test_immunize_returns_started_runtime(self, tmp_path):
        runtime = patching.immunize(history_path=str(tmp_path / "h.json"))
        try:
            assert runtime.dimmunix.running
            assert runtime.dimmunix.config.history_path is not None
        finally:
            runtime.dimmunix.stop()
            patching.uninstall()


class TestRuntimeHelpers:
    def test_thread_registry_assigns_stable_ids(self):
        registry = ThreadRegistry()
        first = registry.current_thread_id()
        assert registry.current_thread_id() == first
        ids = []
        thread = threading.Thread(target=lambda: ids.append(registry.current_thread_id()))
        thread.start()
        thread.join()
        assert ids[0] != first
        assert registry.name_of(first) is not None
        assert len(registry.known_threads()) == 2

    def test_yield_manager_wake(self, config):
        dimmunix = Dimmunix(config=config)
        manager = YieldManager(dimmunix)
        event = manager.prepare_wait(5)
        assert not event.is_set()
        manager.wake([5])
        assert event.is_set()
        # Wakers registered with the facade also reach the event.
        event.clear()
        dimmunix.wake([5])
        assert event.is_set()
        manager.forget(5)

    def test_capture_stack_never_empty(self, runtime):
        stack = runtime.capture_stack()
        assert len(stack) >= 1

    def test_end_to_end_immunity_with_patched_threading(self, tmp_path):
        """The full monkey-patching path: deadlock once, immune afterwards."""
        history_path = str(tmp_path / "patched.json")

        def run_once():
            config = DimmunixConfig(history_path=history_path,
                                    monitor_interval=0.02)
            with patching.patched(config=config) as runtime:
                lock_a = threading.Lock()
                lock_b = threading.Lock()
                ready = [threading.Event(), threading.Event()]
                outcome = {"timeouts": 0}

                def update(first, second, index):
                    if not first.acquire(timeout=1.0):
                        outcome["timeouts"] += 1
                        return
                    ready[index].set()
                    ready[1 - index].wait(0.2)
                    if not second.acquire(timeout=1.0):
                        outcome["timeouts"] += 1
                        first.release()
                        return
                    second.release()
                    first.release()

                threads = [
                    threading.Thread(target=update, args=(lock_a, lock_b, 0)),
                    threading.Thread(target=update, args=(lock_b, lock_a, 1)),
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                stats = runtime.dimmunix.stats.snapshot()
            return outcome, stats

        first_outcome, first_stats = run_once()
        assert first_outcome["timeouts"] >= 1
        assert first_stats["deadlocks_detected"] >= 1
        second_outcome, second_stats = run_once()
        assert second_outcome["timeouts"] == 0
        assert second_stats["yield_decisions"] >= 1
