"""Unit tests for the resource allocation graph."""

from __future__ import annotations

import pytest

from repro.core.callstack import CallStack
from repro.core.errors import RAGError
from repro.core.events import (acquired_event, allow_event, cancel_event,
                               release_event, request_event, yield_event)
from repro.core.rag import ResourceAllocationGraph


def stack(*labels):
    return CallStack.from_labels(list(labels))


S = stack("f:1", "g:2")
S2 = stack("h:3", "g:2")


@pytest.fixture
def rag():
    return ResourceAllocationGraph()


class TestEdges:
    def test_request_edge(self, rag):
        rag.apply(request_event(1, 10, S))
        assert rag.thread(1).request == (10, S)
        assert rag.thread(1).waiting_lock == 10

    def test_allow_replaces_request(self, rag):
        rag.apply(request_event(1, 10, S))
        rag.apply(allow_event(1, 10, S))
        state = rag.thread(1)
        assert state.request is None
        assert state.allow == (10, S)
        assert 1 in rag.lock(10).waiters

    def test_yield_flips_allow_back_to_request(self, rag):
        rag.apply(allow_event(1, 10, S))
        rag.apply(yield_event(1, 10, S, causes=((2, 20, S2),)))
        state = rag.thread(1)
        assert state.allow is None
        assert state.request == (10, S)
        assert state.is_yielding
        assert 1 not in rag.lock(10).waiters

    def test_acquired_creates_hold_edge(self, rag):
        rag.apply(allow_event(1, 10, S))
        rag.apply(acquired_event(1, 10, S))
        assert rag.holder_of(10) == 1
        assert rag.hold_stack(10) == S
        assert rag.thread(1).allow is None
        assert rag.thread(1).hold_count == 1

    def test_reentrant_holds_are_multiset(self, rag):
        rag.apply(acquired_event(1, 10, S))
        rag.apply(acquired_event(1, 10, S2))
        assert rag.thread(1).hold_count == 2
        assert rag.hold_stack(10) == S2
        rag.apply(release_event(1, 10))
        assert rag.holder_of(10) == 1
        rag.apply(release_event(1, 10))
        assert rag.holder_of(10) is None

    def test_release_without_hold_ignored_by_default(self, rag):
        rag.apply(release_event(1, 10))
        assert rag.holder_of(10) is None

    def test_release_without_hold_strict_raises(self):
        rag = ResourceAllocationGraph(strict=True)
        with pytest.raises(RAGError):
            rag.apply(release_event(1, 10))

    def test_cancel_clears_waiting_state(self, rag):
        rag.apply(allow_event(1, 10, S))
        rag.apply(cancel_event(1, 10))
        assert rag.thread(1).waiting_lock is None
        assert 1 not in rag.lock(10).waiters

    def test_acquire_while_owned_nonstrict_recovers(self, rag):
        rag.apply(acquired_event(1, 10, S))
        rag.apply(acquired_event(2, 10, S2))
        assert rag.holder_of(10) == 2

    def test_acquire_while_owned_strict_raises(self):
        rag = ResourceAllocationGraph(strict=True)
        rag.apply(acquired_event(1, 10, S))
        with pytest.raises(RAGError):
            rag.apply(acquired_event(2, 10, S2))


class TestBookkeeping:
    def test_dirty_threads_tracking(self, rag):
        rag.apply(request_event(1, 10, S))
        rag.apply(request_event(2, 20, S))
        assert rag.dirty_threads == {1, 2}
        rag.clear_dirty()
        assert rag.dirty_threads == set()

    def test_edge_counts(self, rag):
        rag.apply(acquired_event(1, 10, S))
        rag.apply(allow_event(2, 10, S2))
        rag.apply(yield_event(3, 20, S, causes=((1, 10, S),)))
        counts = rag.edge_counts()
        assert counts == {"request": 1, "allow": 1, "hold": 1, "yield": 1}

    def test_snapshot_is_json_friendly(self, rag):
        import json
        rag.apply(acquired_event(1, 10, S))
        rag.apply(allow_event(2, 10, S2))
        json.dumps(rag.snapshot())

    def test_apply_batch_counts(self, rag):
        applied = rag.apply_batch([request_event(1, 10, S), allow_event(1, 10, S)])
        assert applied == 2
        assert rag.events_applied == 2

    def test_forget_thread(self, rag):
        rag.apply(acquired_event(1, 10, S))
        rag.apply(release_event(1, 10))
        rag.forget_thread(1)
        assert 1 not in rag.thread_ids()

    def test_forget_thread_with_edges_raises(self, rag):
        rag.apply(acquired_event(1, 10, S))
        with pytest.raises(RAGError):
            rag.forget_thread(1)
