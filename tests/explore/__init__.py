"""Differential-equivalence layer for the exploration engine.

A reduced state-space search is only trustworthy if it is checked
against the unreduced one.  This package pins the explorer's three
reduction/scaling claims to executable evidence:

* ``test_differential`` — source-DPOR finds *exactly* the
  deadlock-signature set full DFS finds, on every scenario in the
  :data:`repro.sim.explore.SCENARIOS` registry (thread, asyncio, and
  multi-holder alike, engine-backed included), while running no more —
  and on contended trees strictly fewer — runs than sleep sets; and
  parallel exploration is byte-identical to serial for every worker
  count and transport.
* ``test_frontier_properties`` — hypothesis-driven invariants of the
  machinery those guarantees ride on: schedule-trace prefixes and
  frontier nodes serialize byte-stably, and a frontier split/merge
  never loses or duplicates a subtree.

Tier-1 runs a two-scenario smoke slice; ``EXPLORE_NIGHTLY=1`` unlocks
the full registry sweep (the nightly CI job).
"""
