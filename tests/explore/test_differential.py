"""DPOR-vs-DFS differential equivalence, and parallel == serial.

The claims pinned here (see the package docstring) are the acceptance
criteria of the "Explorer at scale" change:

* On every registered scenario, source-DPOR's deadlock-*signature* set
  (stall footprints — who waits on what) equals full DFS's, with both
  trees fully enumerated.  Registry parameterization means a new
  scenario is covered the moment it is registered.
* DPOR never runs more executions than sleep sets, and on the
  philosophers-3 full (eat-time-zero) tree it runs strictly fewer than
  sleep's 107-of-1239 — the reduction is real, not a relabeling.
* Engine-backed (Dimmunix) exploration, where sleep sets historically
  did not apply, gets the same guarantee: the immunity claim holds
  under DPOR with fewer runs than unreduced search.
* Parallel exploration produces a byte-identical
  :meth:`~repro.sim.explore.ExplorationResult.canonical` form to
  serial — over the deterministic in-process transport for every
  strategy, and over real OS worker processes on the file transport.

Tier-1 runs the smoke slice (two-lock-inversion, philosophers-3, plus
the always-on philosophers-3-eat0 reduction pin); ``EXPLORE_NIGHTLY=1``
sweeps the whole registry.
"""

from __future__ import annotations

import os

import pytest

from repro.sim import (Explorer, ImmunityChecker, NullBackend,
                       ParallelExplorer)
from repro.sim.explore import SCENARIOS

NIGHTLY = os.environ.get("EXPLORE_NIGHTLY") == "1"

#: Scenarios exercised on every tier-1 run (PR latency budget); the
#: rest of the registry joins under EXPLORE_NIGHTLY=1.
SMOKE_SCENARIOS = ("two-lock-inversion", "philosophers-3")

nightly_only = pytest.mark.skipif(
    not NIGHTLY, reason="full-registry sweep runs nightly "
                        "(set EXPLORE_NIGHTLY=1 to run locally)")


def scenario_params():
    """Every registered scenario; non-smoke entries gated to nightly."""
    return [
        pytest.param(name, marks=() if name in SMOKE_SCENARIOS
                     else nightly_only)
        for name in sorted(SCENARIOS)
    ]


def explore(name: str, strategy: str, max_runs: int = 20_000):
    return Explorer(lambda: SCENARIOS[name](NullBackend()), name=name,
                    strategy=strategy, max_runs=max_runs).explore()


def signature_set(result):
    """The deduplicated deadlock-signature set of an exploration."""
    return {finding.footprint for finding in result.deadlocks}


class TestDporEqualsDfs:
    @pytest.mark.parametrize("scenario", scenario_params())
    def test_deadlock_signature_sets_equal(self, scenario):
        """DPOR finds exactly the deadlock signatures full DFS finds."""
        dfs = explore(scenario, "dfs")
        dpor = explore(scenario, "dpor")
        assert dfs.exhausted, scenario
        assert dpor.exhausted, scenario
        assert signature_set(dpor) == signature_set(dfs), scenario
        assert dpor.unique_deadlocks == dfs.unique_deadlocks, scenario
        assert dpor.runs <= dfs.runs, scenario

    @pytest.mark.parametrize("scenario", scenario_params())
    def test_dpor_never_worse_than_sleep_sets(self, scenario):
        """The race-reversal frontier is a subset of the sleep-set one."""
        sleep = explore(scenario, "sleep")
        dpor = explore(scenario, "dpor")
        assert sleep.exhausted and dpor.exhausted, scenario
        assert dpor.runs <= sleep.runs, (scenario, dpor.runs, sleep.runs)
        assert signature_set(dpor) == signature_set(sleep), scenario


class TestPhilosophersFullTree:
    """The headline reduction numbers, pinned exactly (always on)."""

    def test_dpor_strictly_beats_sleep_sets_on_the_full_tree(self):
        dfs = explore("philosophers-3-eat0", "dfs")
        sleep = explore("philosophers-3-eat0", "sleep")
        dpor = explore("philosophers-3-eat0", "dpor")
        assert dfs.exhausted and sleep.exhausted and dpor.exhausted
        # The unreduced tree: 1239 runs, one unique deadlock signature.
        assert dfs.runs == 1239
        assert dfs.unique_deadlocks == 1
        # Sleep sets needed 107 (< 131); DPOR must be strictly better.
        assert sleep.runs < 131
        assert dpor.runs < sleep.runs, (dpor.runs, sleep.runs)
        assert dpor.runs < 131
        # ... while finding the identical deadlock-signature set.
        assert signature_set(dpor) == signature_set(dfs)
        assert signature_set(sleep) == signature_set(dfs)


class TestEngineBackedDpor:
    """DPOR applies to Dimmunix-backed exploration (sleep sets never did)."""

    @pytest.mark.parametrize("scenario", scenario_params())
    def test_immunity_claim_holds_under_dpor_with_fewer_runs(self, scenario):
        dpor_report = ImmunityChecker(SCENARIOS[scenario], name=scenario,
                                      max_runs=20_000,
                                      strategy="dpor").check()
        assert dpor_report.holds, (scenario, dpor_report.as_dict())
        dfs_report = ImmunityChecker(SCENARIOS[scenario], name=scenario,
                                     max_runs=20_000, strategy="dfs").check()
        assert dfs_report.holds, (scenario, dfs_report.as_dict())
        # The immune phase explores an engine-backed tree; the reduction
        # must actually engage there.
        assert dpor_report.immune.runs <= dfs_report.immune.runs, scenario

    def test_engine_backed_reduction_is_strict_on_the_full_tree(self):
        """On the contended tree the engine-backed pruning is strict."""
        scenario = "philosophers-3-eat0"
        dpor_report = ImmunityChecker(SCENARIOS[scenario], name=scenario,
                                      max_runs=20_000,
                                      strategy="dpor").check()
        dfs_report = ImmunityChecker(SCENARIOS[scenario], name=scenario,
                                     max_runs=20_000, strategy="dfs").check()
        assert dpor_report.holds and dfs_report.holds
        assert dpor_report.immune.runs < dfs_report.immune.runs


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("strategy", ["dfs", "sleep", "dpor"])
    @pytest.mark.parametrize("workers", [1, 3])
    def test_memory_transport_is_byte_identical(self, strategy, workers):
        """Worker count and the split/claim/merge path change nothing."""
        scenario = "philosophers-3"
        serial = explore(scenario, strategy)
        parallel = ParallelExplorer(scenario, workers=workers,
                                    strategy=strategy,
                                    transport="memory").explore()
        assert parallel.canonical_bytes() == serial.canonical_bytes()
        assert parallel.strategy == f"{strategy}+parallel-{workers}"

    @pytest.mark.parametrize("strategy", ["dfs", "dpor"])
    def test_file_transport_worker_processes_are_byte_identical(
            self, strategy, tmp_path):
        """Real OS worker processes over the spool directory."""
        scenario = "two-lock-inversion"
        serial = explore(scenario, strategy)
        parallel = ParallelExplorer(
            scenario, workers=2, strategy=strategy, transport="file",
            spool_dir=str(tmp_path / strategy)).explore()
        assert parallel.canonical_bytes() == serial.canonical_bytes()

    @nightly_only
    def test_full_tree_across_processes(self):
        """The 1239-run tree, split over 4 OS processes, byte-identical."""
        scenario = "philosophers-3-eat0"
        serial = explore(scenario, "dfs")
        parallel = ParallelExplorer(scenario, workers=4,
                                    strategy="dfs").explore()
        assert parallel.runs == serial.runs == 1239
        assert parallel.canonical_bytes() == serial.canonical_bytes()
