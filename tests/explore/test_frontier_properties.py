"""Property tests for the frontier/trace machinery under the explorer.

The differential suite's byte-identity guarantees stand on three
mechanical invariants, pinned here with hypothesis (seeded and
derandomized, so CI failures replay deterministically):

* **Serialization is a bijection on the wire format** — a
  :class:`~repro.sim.schedule.ScheduleTrace` prefix and a
  :class:`~repro.sim.explore.FrontierNode` round-trip through their
  stable JSON encodings byte-for-byte, for arbitrary payloads, not just
  the ones today's scenarios produce.
* **Splitting a frontier neither loses nor duplicates a subtree** — for
  any split width, running the paused prefix plus each pending subtree
  root independently and merging reproduces the serial exploration
  exactly (same runs, same deadlocks, same canonical bytes).
* **The task board delivers each task exactly once** — the claim/finish
  protocol both transports implement cannot drop or double-assign work.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.errors import SimulationError
from repro.sim import Explorer, FrontierNode, NullBackend, ScheduleTrace
from repro.sim.explore import SCENARIOS
from repro.sim.parexplore import (MemoryTaskBoard, merge_results,
                                  result_to_payload)

COMMON = dict(deadline=None, derandomize=True,
              suppress_health_check=[HealthCheck.too_slow])

slots = st.integers(min_value=0, max_value=63)
locks = st.one_of(st.none(), st.integers(min_value=0, max_value=31))


# ---------------------------------------------------------------------------
# Serialization round trips
# ---------------------------------------------------------------------------

class TestTraceSerialization:
    @given(choices=st.lists(slots, max_size=40),
           length=st.integers(min_value=0, max_value=50))
    @settings(max_examples=200, **COMMON)
    def test_prefix_law_and_byte_stable_round_trip(self, choices, length):
        trace = ScheduleTrace(choices, meta={"scenario": "s"})
        prefix = trace.prefix(min(length, len(choices)))
        assert prefix.choices == choices[:length]
        assert prefix.meta == trace.meta
        encoded = prefix.dumps()
        decoded = ScheduleTrace.from_dict(
            __import__("json").loads(encoded))
        assert decoded == prefix
        assert decoded.dumps() == encoded  # byte-stable: fixed point

    @given(length=st.integers(max_value=-1))
    @settings(max_examples=20, **COMMON)
    def test_negative_prefix_rejected(self, length):
        with pytest.raises(SimulationError):
            ScheduleTrace([0, 1]).prefix(length)


class TestFrontierNodeSerialization:
    @given(choices=st.lists(slots, max_size=30).map(tuple),
           sleep_at=st.dictionaries(
               st.integers(min_value=0, max_value=30),
               st.lists(st.tuples(slots, locks), max_size=4).map(tuple),
               max_size=5))
    @settings(max_examples=200, **COMMON)
    def test_round_trip_is_byte_stable(self, choices, sleep_at):
        node = FrontierNode(choices=choices, sleep_at=sleep_at)
        encoded = node.dumps()
        decoded = FrontierNode.loads(encoded)
        assert decoded == node
        assert decoded.dumps() == encoded  # byte-stable: fixed point

    @given(payload=st.one_of(
        st.just({}),
        st.just({"choices": "nope"}),
        st.just({"choices": [0], "sleep_at": {"x": 1}}),
        st.just({"choices": [None]})))
    @settings(max_examples=10, **COMMON)
    def test_malformed_payloads_rejected(self, payload):
        with pytest.raises(SimulationError):
            FrontierNode.from_dict(payload)


# ---------------------------------------------------------------------------
# Frontier split/merge completeness
# ---------------------------------------------------------------------------

class TestFrontierSplitMerge:
    @given(scenario=st.sampled_from(["two-lock-inversion", "philosophers-3"]),
           strategy=st.sampled_from(["dfs", "sleep"]),
           width=st.integers(min_value=1, max_value=9))
    @settings(max_examples=25, **COMMON)
    def test_split_then_merge_reproduces_serial(self, scenario, strategy,
                                                width):
        """No subtree is lost or duplicated, for any split width."""
        factory = lambda: SCENARIOS[scenario](NullBackend())  # noqa: E731
        serial = Explorer(factory, name=scenario,
                          strategy=strategy).explore()

        splitter = Explorer(factory, name=scenario, strategy=strategy)
        prefix, frontier = splitter.expand(width, strategy=strategy)
        prefix_payload = result_to_payload(prefix)
        prefix_payload["exhausted"] = prefix.cut_depth == 0
        # Serialize every subtree root across a (simulated) process
        # boundary and explore each independently, in processing order.
        parts = [prefix_payload]
        for node in frontier:
            worker = Explorer(factory, name=scenario, strategy=strategy)
            shipped = FrontierNode.loads(node.dumps())
            parts.append(result_to_payload(
                worker.explore_frontier([shipped], strategy=strategy)))
        merged = merge_results(parts, mode=serial.mode, strategy=strategy,
                               max_runs=splitter.max_runs)
        assert merged.runs == serial.runs
        assert merged.canonical_bytes() == serial.canonical_bytes()

    @given(width=st.integers(min_value=1, max_value=6),
           drop=st.integers(min_value=0, max_value=5))
    @settings(max_examples=15, **COMMON)
    def test_dropping_any_subtree_is_detected(self, width, drop):
        """The merge is complete *because* every subtree matters: removing
        one (when there is one to remove) loses runs relative to serial."""
        factory = lambda: SCENARIOS["philosophers-3"](NullBackend())  # noqa: E731
        serial = Explorer(factory, name="p3", strategy="dfs").explore()
        splitter = Explorer(factory, name="p3", strategy="dfs")
        prefix, frontier = splitter.expand(width, strategy="dfs")
        if not frontier:
            return  # tree exhausted before the split width was reached
        kept = [node for index, node in enumerate(frontier)
                if index != drop % len(frontier)]
        parts = [result_to_payload(prefix)]
        for node in kept:
            worker = Explorer(factory, name="p3", strategy="dfs")
            parts.append(result_to_payload(
                worker.explore_frontier([node], strategy="dfs")))
        merged = merge_results(parts, mode="dfs", strategy="dfs",
                               max_runs=splitter.max_runs)
        assert merged.runs < serial.runs


# ---------------------------------------------------------------------------
# Task-board delivery
# ---------------------------------------------------------------------------

class TestTaskBoardProtocol:
    @given(count=st.integers(min_value=0, max_value=50),
           claimers=st.integers(min_value=1, max_value=4))
    @settings(max_examples=50, **COMMON)
    def test_each_task_claimed_exactly_once(self, count, claimers):
        board = MemoryTaskBoard()
        for task_id in range(count):
            board.publish(task_id, {"task": task_id})
        board.close()
        claimed = []
        for _worker in range(claimers):
            while True:
                item = board.claim()
                if item is None:
                    break
                claimed.append(item[0])
                board.finish(item[0], {"done": item[0]})
        assert sorted(claimed) == list(range(count))  # no loss, no dups
        assert sorted(board.results()) == list(range(count))
