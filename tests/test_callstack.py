"""Unit tests for the call-stack abstraction."""

from __future__ import annotations

import pytest

from repro.core.callstack import CallStack, EMPTY_STACK, Frame


class TestFrame:
    def test_symbolic_function_only(self):
        frame = Frame.symbolic("update")
        assert frame.function == "update"
        assert frame.lineno == 0

    def test_symbolic_with_line(self):
        frame = Frame.symbolic("update:42")
        assert frame.function == "update"
        assert frame.lineno == 42

    def test_symbolic_full(self):
        frame = Frame.symbolic("update:db.py:42")
        assert frame.filename == "db.py"
        assert frame.lineno == 42

    def test_encode_decode_roundtrip(self):
        frame = Frame(function="f", filename="pkg/mod.py", lineno=7)
        assert Frame.decode(frame.encode()) == frame

    def test_label(self):
        frame = Frame(function="f", filename="mod.py", lineno=7)
        assert frame.label() == "f (mod.py:7)"


class TestCallStack:
    def test_from_labels_order_is_innermost_first(self):
        stack = CallStack.from_labels(["lock:3", "update:1", "main:0"])
        assert stack[0].function == "lock"
        assert stack[2].function == "main"

    def test_equality_and_hash(self):
        a = CallStack.from_labels(["f:1", "g:2"])
        b = CallStack.from_labels(["f:1", "g:2"])
        c = CallStack.from_labels(["f:1", "g:3"])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_suffix(self):
        stack = CallStack.from_labels(["a:1", "b:2", "c:3"])
        assert len(stack.suffix(2)) == 2
        assert stack.suffix(2)[0].function == "a"
        assert len(stack.suffix(10)) == 3

    def test_suffix_negative_depth_raises(self):
        with pytest.raises(ValueError):
            CallStack.from_labels(["a:1"]).suffix(-1)

    def test_matches_at_depth(self):
        sig = CallStack.from_labels(["lock:3", "update:1"])
        runtime_same = CallStack.from_labels(["lock:3", "update:1", "main:9"])
        runtime_diff = CallStack.from_labels(["lock:3", "other:5", "main:9"])
        assert sig.matches(runtime_same, 2)
        assert sig.matches(runtime_same, 1)
        assert not sig.matches(runtime_diff, 2)
        assert sig.matches(runtime_diff, 1)

    def test_matches_shorter_stack_requires_equality(self):
        short = CallStack.from_labels(["lock:3", "update:1"])
        longer = CallStack.from_labels(["lock:3", "update:1", "main:9"])
        assert not short.matches(longer, 4)
        assert short.matches(longer, 2)

    def test_matches_single_frame_stack_matches_on_top(self):
        # A one-frame stack is the shape of a degraded lazy capture (the
        # acquiring frame died before materialization); it matches any
        # stack with the same innermost frame, at any depth, so archived
        # degraded signatures keep firing against deep runtime stacks.
        single = CallStack.from_labels(["lock:3"])
        deep = CallStack.from_labels(["lock:3", "update:1", "main:9"])
        other = CallStack.from_labels(["open:7", "update:1", "main:9"])
        assert single.matches(deep, 4)
        assert deep.matches(single, 4)
        assert not single.matches(other, 4)

    def test_encode_decode_roundtrip(self):
        stack = CallStack.from_labels(["lock:x.py:3", "update:x.py:1"])
        assert CallStack.decode(stack.encode()) == stack

    def test_empty_stack_is_falsy(self):
        assert not EMPTY_STACK
        assert len(EMPTY_STACK) == 0

    def test_capture_returns_current_frames(self):
        def inner():
            return CallStack.capture(skip=0, limit=10)

        stack = inner()
        functions = [frame.function for frame in stack]
        assert "inner" in functions
        assert "test_capture_returns_current_frames" in functions

    def test_capture_respects_limit(self):
        def recurse(n):
            if n == 0:
                return CallStack.capture(skip=0, limit=3)
            return recurse(n - 1)

        stack = recurse(10)
        assert len(stack) == 3

    def test_capture_excludes_internal_frames(self):
        stack = CallStack.capture(skip=0, limit=32)
        for frame in stack:
            assert "repro/core" not in frame.filename.replace("\\", "/")

    def test_slicing_returns_callstack(self):
        stack = CallStack.from_labels(["a:1", "b:2", "c:3"])
        assert isinstance(stack[:2], CallStack)
        assert len(stack[:2]) == 2

    def test_labels(self):
        stack = CallStack.from_labels(["a:f.py:1"])
        assert stack.labels() == ["a (f.py:1)"]

    def test_ordering_is_defined(self):
        a = CallStack.from_labels(["a:1"])
        b = CallStack.from_labels(["b:1"])
        assert sorted([b, a]) == [a, b]


class TestCaptureCacheEviction:
    """The per-call-site memo must shed load incrementally, never by a
    wholesale clear: a clear cold-starts every hot call site at once (the
    original bug — one overflowing site wiped everyone's entries)."""

    def test_evict_half_drops_oldest_half_only(self):
        from repro.core import callstack as cs

        cache = {i: str(i) for i in range(10)}
        cs._evict_half(cache)
        # Dicts iterate in insertion order, so "oldest half" is the first
        # half; the newest (hottest-by-recency-of-insertion) half survives.
        assert cache == {i: str(i) for i in range(5, 10)}

    def test_crossing_limit_keeps_the_working_set_warm(self):
        from repro.core import callstack as cs

        saved = dict(cs._capture_cache)
        cs._capture_cache.clear()
        try:
            for i in range(cs._CAPTURE_CACHE_LIMIT):
                cs._capture_cache[("synthetic", i)] = EMPTY_STACK

            def site():
                return CallStack.capture_cached(skip=0, limit=4)

            # Two captures from the one call site (the memo key includes
            # the caller's instruction offset, so the calls must share a
            # source position): the first overflows and inserts, the
            # second must hit the surviving entry.
            captures = [site() for _ in range(2)]
            assert captures[1] is captures[0]
            # The overflow evicted only the oldest half and then admitted
            # the new entry; the newest synthetic entries are still warm.
            assert len(cs._capture_cache) == cs._CAPTURE_CACHE_LIMIT // 2 + 1
            newest = ("synthetic", cs._CAPTURE_CACHE_LIMIT - 1)
            oldest = ("synthetic", 0)
            assert newest in cs._capture_cache
            assert oldest not in cs._capture_cache
        finally:
            cs._capture_cache.clear()
            cs._capture_cache.update(saved)
