"""Tests for the synchronization event types."""

from __future__ import annotations

from repro.core.callstack import CallStack
from repro.core.events import ( EventType, acquired_event, allow_event,
                               cancel_event, release_event, request_event,
                               yield_event)


def stack():
    return CallStack.from_labels(["f:1"])


class TestEventConstructors:
    def test_types(self):
        s = stack()
        assert request_event(1, 2, s).type is EventType.REQUEST
        assert allow_event(1, 2, s).type is EventType.ALLOW
        assert acquired_event(1, 2, s).type is EventType.ACQUIRED
        assert release_event(1, 2).type is EventType.RELEASE
        assert cancel_event(1, 2).type is EventType.CANCEL
        assert yield_event(1, 2, s, ((3, 4, s),)).type is EventType.YIELD

    def test_sequence_numbers_are_monotonic(self):
        first = request_event(1, 2, stack())
        second = request_event(1, 2, stack())
        assert second.seq > first.seq

    def test_yield_event_carries_causes(self):
        s = stack()
        event = yield_event(1, 2, s, causes=((3, 4, s), (5, 6, s)))
        assert len(event.causes) == 2
        assert event.causes[0][0] == 3

    def test_timestamp_passthrough(self):
        event = acquired_event(1, 2, stack(), timestamp=12.5)
        assert event.timestamp == 12.5

    def test_events_are_frozen(self):
        event = request_event(1, 2, stack())
        try:
            event.thread_id = 9
            mutated = True
        except Exception:
            mutated = False
        assert not mutated

    def test_repr_is_compact(self):
        text = repr(request_event(1, 2, stack()))
        assert "request" in text and "thread=1" in text
