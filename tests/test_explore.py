"""Tests for the schedule-exploration engine (policies, DFS, replay, shrink)."""

from __future__ import annotations

import json

import pytest

from repro.core.config import DimmunixConfig
from repro.core.errors import ReplayDivergenceError, SimulationError
from repro.sim import (Acquire, DimmunixBackend, Explorer, FirstReadyPolicy,
                       ImmunityChecker, NullBackend, RandomPolicy, Release,
                       ReplayPolicy, ScheduleTrace, SimScheduler,
                       build_philosophers, build_two_lock_inversion, call_site)


def counter_scenario(backend=None, threads=3):
    """Threads appending to a shared list: every interleaving is visible."""
    scheduler = SimScheduler(backend=backend or NullBackend())
    lock = scheduler.new_lock("L")
    order = []

    def program(tag):
        def body():
            yield Acquire(lock, call_site(f"append:{tag}"))
            order.append(tag)
            yield Release(lock)
        return body

    for index in range(threads):
        scheduler.add_thread(program(index), name=f"writer-{index}")
    scheduler.order = order
    return scheduler


class TestSchedulePolicies:
    def test_default_policy_is_seeded_random(self):
        scheduler = SimScheduler(seed=3)
        assert isinstance(scheduler.policy, RandomPolicy)
        assert scheduler.policy.seed == 3

    def test_first_ready_policy_is_deterministic(self):
        outcomes = []
        for _ in range(3):
            scheduler = counter_scenario()
            scheduler.policy = FirstReadyPolicy()
            scheduler.run()
            outcomes.append(list(scheduler.order))
        assert outcomes[0] == outcomes[1] == outcomes[2] == [0, 1, 2]

    def test_schedule_recorded_in_result(self):
        scheduler = counter_scenario()
        scheduler.policy = FirstReadyPolicy()
        result = scheduler.run()
        assert result.schedule, "choice points must be recorded"
        assert result.choice_points == len(result.schedule)
        assert all(slot in (0, 1, 2) for slot in result.schedule)

    def test_policy_choosing_non_candidate_is_an_error(self):
        class Rogue(FirstReadyPolicy):
            def choose(self, candidates, scheduler):
                return object()

        scheduler = counter_scenario()
        scheduler.policy = Rogue()
        with pytest.raises(SimulationError):
            scheduler.run()


class TestScheduleTrace:
    def test_round_trip_and_stable_bytes(self, tmp_path):
        trace = ScheduleTrace([0, 1, 1, 0], meta={"scenario": "x"})
        path = str(tmp_path / "t.trace.json")
        trace.save(path)
        reloaded = ScheduleTrace.load(path)
        assert reloaded == trace
        assert reloaded.meta["scenario"] == "x"
        assert reloaded.dumps() == trace.dumps()
        with open(path, "r", encoding="utf-8") as handle:
            assert handle.read() == trace.dumps()

    def test_rejects_malformed_payloads(self):
        with pytest.raises(SimulationError):
            ScheduleTrace.from_dict({"meta": {}})
        with pytest.raises(SimulationError):
            ScheduleTrace.from_dict({"choices": ["a"]})
        with pytest.raises(SimulationError):
            ScheduleTrace.from_dict({"choices": [], "format_version": 99})


class TestReplay:
    def test_replay_reproduces_run_exactly(self):
        recorded = counter_scenario()
        recorded.policy = RandomPolicy(seed=11)
        first = recorded.run()
        observed = list(recorded.order)

        replayed = counter_scenario()
        replayed.policy = ReplayPolicy(recorded.trace())
        second = replayed.run()
        assert list(replayed.order) == observed
        assert second.summary() == first.summary()
        assert list(second.schedule) == list(first.schedule)

    def test_strict_replay_raises_on_divergence(self):
        scheduler = counter_scenario()
        scheduler.policy = ReplayPolicy(ScheduleTrace([2, 2, 2, 2, 2, 2]))
        with pytest.raises(ReplayDivergenceError):
            scheduler.run()

    def test_strict_replay_raises_when_trace_too_short(self):
        scheduler = counter_scenario()
        scheduler.policy = ReplayPolicy(ScheduleTrace([0]))
        with pytest.raises(ReplayDivergenceError):
            scheduler.run()

    def test_tolerant_replay_completes_with_short_trace(self):
        scheduler = counter_scenario()
        scheduler.policy = ReplayPolicy(ScheduleTrace([2]), strict=False)
        result = scheduler.run()
        assert result.completed
        assert scheduler.order[0] == 2


class TestDfsExploration:
    def test_enumerates_all_orders_of_contending_writers(self):
        built = []

        def scenario():
            scheduler = counter_scenario()
            built.append(scheduler)
            return scheduler

        result = Explorer(scenario, sleep_sets=False).explore()
        assert result.exhausted
        orders = {tuple(s.order) for s in built if len(s.order) == 3}
        # Three writers contending on one lock: all 3! = 6 acquisition
        # orders must be visited by the exhaustive search.
        assert orders == {(0, 1, 2), (0, 2, 1), (1, 0, 2),
                          (1, 2, 0), (2, 0, 1), (2, 1, 0)}

    def test_two_lock_inversion_finds_deadlock_and_completion(self):
        explorer = Explorer(lambda: build_two_lock_inversion(NullBackend()))
        result = explorer.explore()
        assert result.exhausted
        assert result.deadlock_count >= 1
        assert result.unique_deadlocks == 1
        assert result.completed >= 1

    def test_sleep_sets_prune_without_losing_coverage(self):
        factory = lambda: build_philosophers(NullBackend(), seats=3,  # noqa: E731
                                             eat_time=0.0)
        pruned = Explorer(factory, max_runs=50_000).explore()
        full = Explorer(factory, max_runs=50_000, sleep_sets=False).explore()
        assert pruned.exhausted and full.exhausted
        assert pruned.runs < full.runs
        assert pruned.unique_deadlocks == full.unique_deadlocks == 1
        assert pruned.completed >= 1 and full.completed >= 1

    def test_preemption_bound_zero_restricts_search(self):
        factory = lambda: build_two_lock_inversion(NullBackend())  # noqa: E731
        bounded = Explorer(factory, preemption_bound=0).explore()
        unbounded = Explorer(factory).explore()
        assert bounded.runs <= unbounded.runs
        assert bounded.skipped_preemption >= 1

    def test_preemption_bound_counts_visible_switches_only(self):
        """The two-lock deadlock needs exactly one real preemption:
        bound 0 must exclude it (but still cover non-preemptive runs,
        which interleave Compute glue), bound 1 must find it."""
        factory = lambda: build_two_lock_inversion(NullBackend())  # noqa: E731
        bound0 = Explorer(factory, preemption_bound=0).explore()
        assert bound0.deadlock_count == 0
        assert bound0.completed >= 1
        bound1 = Explorer(factory, preemption_bound=1).explore()
        assert bound1.deadlock_count >= 1

    def test_preemption_bound_disables_sleep_sets(self):
        factory = lambda: build_philosophers(NullBackend(), seats=3,  # noqa: E731
                                             eat_time=0.0)
        bounded = Explorer(factory, preemption_bound=10,
                           max_runs=50_000).explore()
        assert bounded.pruned_sleep == 0
        unbounded = Explorer(factory, max_runs=50_000).explore()
        assert bounded.unique_deadlocks == unbounded.unique_deadlocks == 1

    def test_max_runs_budget_is_respected(self):
        factory = lambda: build_philosophers(NullBackend(), seats=3,  # noqa: E731
                                             eat_time=0.0)
        result = Explorer(factory, sleep_sets=False, max_runs=5).explore()
        assert result.runs == 5
        assert not result.exhausted

    def test_max_depth_cuts_runs(self):
        factory = lambda: build_philosophers(NullBackend(), seats=3)  # noqa: E731
        result = Explorer(factory, max_depth=4).explore()
        assert result.cut_depth >= 1
        assert not result.exhausted

    def test_stop_on_first_deadlock(self):
        factory = lambda: build_philosophers(NullBackend(), seats=3)  # noqa: E731
        result = Explorer(factory).explore(stop_on_first_deadlock=True)
        assert result.deadlock_count >= 1

    def test_explored_runs_match_strict_replay_side_effects(self):
        """Inter-yield program side effects are a pure function of the
        schedule: what a DFS run observed, strict replay of its trace
        must observe too (lookahead must not perturb the program)."""
        def scenario():
            scheduler = SimScheduler(backend=NullBackend())
            lock = scheduler.new_lock("L")
            state = {"flag": False}
            seen = []

            def setter():
                yield Acquire(lock, call_site("set:1"))
                state["flag"] = True
                yield Release(lock)

            def reader():
                yield Acquire(lock, call_site("read:1"))
                seen.append(state["flag"])
                yield Release(lock)

            scheduler.add_thread(setter, name="setter")
            scheduler.add_thread(reader, name="reader")
            scheduler.seen = seen
            return scheduler

        built = []

        def recording_scenario():
            scheduler = scenario()
            built.append(scheduler)
            return scheduler

        explorer = Explorer(recording_scenario, sleep_sets=False)
        result = explorer.explore()
        assert result.exhausted
        observations = set()
        for scheduler in built:
            trace = scheduler.trace()
            replayed = scenario()
            replayed.policy = ReplayPolicy(trace, strict=True)
            replayed.run()
            assert replayed.seen == scheduler.seen, (
                f"replay of {trace.choices} observed {replayed.seen}, "
                f"exploration observed {scheduler.seen}")
            observations.add(tuple(scheduler.seen))
        # Both orders of the critical sections must have been explored.
        assert observations == {(True,), (False,)}

    def test_deadlock_traces_replay_to_deadlocks(self):
        explorer = Explorer(lambda: build_two_lock_inversion(NullBackend()))
        result = explorer.explore()
        for finding in result.deadlocks:
            replayed = explorer.replay(finding.trace)
            assert replayed.deadlocked
            assert list(replayed.schedule) == finding.trace.choices


class TestRandomWalk:
    def test_swarm_finds_the_deadlock(self):
        explorer = Explorer(lambda: build_two_lock_inversion(NullBackend()))
        result = explorer.random_walk(runs=50, seed=5)
        assert result.runs == 50
        assert result.deadlock_count >= 1
        assert result.unique_deadlocks == 1

    def test_swarm_runs_are_diverse(self):
        explorer = Explorer(lambda: build_philosophers(NullBackend(), seats=3,
                                                       eat_time=0.0))
        result = explorer.random_walk(runs=40, seed=1)
        schedules = {tuple(f.trace.choices) for f in result.deadlocks}
        assert result.completed + result.deadlock_count == result.runs
        assert len(schedules) > 1


class TestShrinking:
    def test_shrunk_trace_is_minimal_and_still_deadlocks(self):
        explorer = Explorer(lambda: build_philosophers(NullBackend(), seats=3,
                                                       eat_time=0.0))
        found = explorer.explore()
        assert found.deadlocks
        original = found.deadlocks[0].trace
        minimal = explorer.shrink(original)
        assert len(minimal) <= len(original)
        replayed = explorer.replay(minimal)
        assert replayed.deadlocked
        assert list(replayed.schedule) == minimal.choices
        assert minimal.meta["shrunk_from"] == len(original)

    def test_shrink_rejects_non_matching_trace(self):
        explorer = Explorer(lambda: build_two_lock_inversion(NullBackend()))
        # A completing schedule (tolerant replay of the empty trace) does
        # not satisfy the default "still deadlocks" predicate.
        result = explorer.replay(ScheduleTrace([]), strict=False)
        assert not result.deadlocked
        with pytest.raises(ValueError):
            explorer.shrink(ScheduleTrace(list(result.schedule)))


class TestBackendForking:
    def test_null_backend_fork(self):
        backend = NullBackend()
        fork = backend.fork()
        assert isinstance(fork, NullBackend)
        assert fork is not backend

    def test_dimmunix_fork_copies_history_without_sharing(self):
        backend = DimmunixBackend(config=DimmunixConfig.for_testing())
        scheduler = build_two_lock_inversion(backend, hold_time=0.01)
        scheduler.run()
        assert len(backend.history) == 1
        fork = backend.fork()
        assert len(fork.history) == 1
        fingerprints = {s.fingerprint for s in backend.history.signatures()}
        assert {s.fingerprint for s in fork.history.signatures()} == fingerprints
        # Mutating the fork must not touch the parent.
        fork.history.clear()
        assert len(fork.history) == 0
        assert len(backend.history) == 1

    def test_detection_only_fork_preserves_detection_mode(self):
        from repro.baselines.detection import DetectionOnlyBackend
        backend = DetectionOnlyBackend()
        fork = backend.fork()
        assert isinstance(fork, DetectionOnlyBackend)
        assert fork.dimmunix.config.detection_only

    def test_gate_lock_fork_keeps_gates_drops_runtime_state(self):
        from repro.baselines.gatelock import GateLockBackend
        backend = GateLockBackend()
        scheduler = build_two_lock_inversion(backend, hold_time=0.01)
        scheduler.run()  # deadlocks and learns a gate
        assert backend.deadlocks_learned == 1
        fork = backend.fork()
        assert len(fork.gates) == len(backend.gates) == 1
        assert fork.gates[0].sites == backend.gates[0].sites
        assert fork.gates[0].owner is None and not fork.gates[0].waiters
        assert fork.denials == 0

    def test_ghost_lock_fork_keeps_ghosts_drops_runtime_state(self):
        from repro.baselines.ghostlock import GhostLockBackend
        backend = GhostLockBackend()
        scheduler = build_two_lock_inversion(backend, hold_time=0.01)
        scheduler.run()
        assert backend.deadlocks_learned == 1
        fork = backend.fork()
        assert len(fork.ghosts) == 1
        assert fork.ghosts[0].lock_ids == backend.ghosts[0].lock_ids
        assert fork.ghosts[0].owner is None and not fork.ghosts[0].waiters

    def test_runtime_core_fork_uses_default_parker(self):
        from repro.core.dimmunix import Dimmunix
        from repro.core.runtime_api import RuntimeCore, ThreadParker

        class BoundParker(ThreadParker):
            def __init__(self, dimmunix):  # no zero-arg constructor
                self.dimmunix = dimmunix

        dimmunix = Dimmunix(config=DimmunixConfig.for_testing())
        core = RuntimeCore(dimmunix, parker=BoundParker(dimmunix))
        fork = core.fork()  # must not try to rebuild the bound parker
        assert type(fork.parker) is ThreadParker
        assert fork.dimmunix is not dimmunix

    def test_runtime_core_fork_preserves_mode_and_handlers(self):
        from repro.core.avoidance import MODE_UPDATES_ONLY
        from repro.core.dimmunix import Dimmunix

        handler = lambda signature, cycle: None  # noqa: E731
        dimmunix = Dimmunix(config=DimmunixConfig.for_testing(),
                            restart_handler=handler,
                            engine_mode=MODE_UPDATES_ONLY)
        fork = dimmunix.runtime_core.fork()
        assert fork.dimmunix.engine.mode == MODE_UPDATES_ONLY
        assert fork.dimmunix.monitor.restart_handler is handler


class TestImmunityChecker:
    def test_two_lock_inversion_immunity_holds(self):
        checker = ImmunityChecker(build_two_lock_inversion,
                                  name="two-lock-inversion", max_runs=2_000)
        report = checker.check()
        assert not report.vacuous
        assert report.vulnerable.deadlock_count >= 1
        assert report.learned_signatures >= 1
        assert report.minimal_trace is not None
        assert report.immune is not None
        assert report.immune.deadlock_count == 0
        assert report.holds

    def test_deadlock_free_scenario_is_vacuous(self):
        def ordered(backend):
            scheduler = SimScheduler(backend=backend)
            a = scheduler.new_lock("A")
            b = scheduler.new_lock("B")

            def program():
                yield Acquire(a, call_site("first:1"))
                yield Acquire(b, call_site("second:2"))
                yield Release(b)
                yield Release(a)

            scheduler.add_thread(program)
            scheduler.add_thread(program)
            return scheduler

        report = ImmunityChecker(ordered, name="ordered",
                                 max_runs=2_000).check()
        assert report.vacuous
        assert not report.holds

    def test_report_as_dict_shape(self):
        report = ImmunityChecker(build_two_lock_inversion,
                                 max_runs=1_000).check()
        payload = report.as_dict()
        assert json.dumps(payload)  # JSON-serializable for harness rows
        assert payload["immune"] is True
        assert payload["immune_exhausted"] is True

    def test_gate_lock_prototype_is_checked_not_crashed(self):
        """Non-engine backends learn inside the backend (no History);
        the checker must fork the learner instead of reading .history."""
        from repro.baselines.gatelock import GateLockBackend
        report = ImmunityChecker(build_two_lock_inversion,
                                 name="two-lock-gate",
                                 backend_prototype=GateLockBackend(),
                                 max_runs=2_000).check()
        assert report.immune is not None
        assert report.holds  # gate serializes both update sites

    def test_holds_requires_exhaustive_immune_phase(self):
        """Zero deadlocks in a *truncated* immune search proves nothing."""
        report = ImmunityChecker(build_two_lock_inversion,
                                 max_runs=1_000).check()
        assert report.holds
        report.immune.exhausted = False
        assert not report.holds


class TestHarnessMatrix:
    def test_exploration_matrix_rows(self):
        from repro.harness import run_exploration_matrix
        from repro.sim.explore import SCENARIOS
        rows = run_exploration_matrix(
            scenarios={"two-lock-inversion": SCENARIOS["two-lock-inversion"]},
            max_runs=1_000)
        assert len(rows) == 1
        row = rows[0].as_dict()
        assert row["immune"] is True
        assert row["states"] > 0
        # The matrix must say how coverage was obtained: strategy,
        # exhaustiveness of both phases, and the reduction ratio against
        # the measured unreduced tree.
        assert row["strategy"] == "dpor"
        assert row["vulnerable_exhausted"] is True
        assert row["immune_exhausted"] is True
        assert row["full_interleavings"] == 14
        assert 0 < row["reduction"] <= 1

    def test_matrix_reports_requested_strategy_without_reduction_probe(self):
        from repro.harness import run_exploration_matrix
        from repro.sim.explore import SCENARIOS
        rows = run_exploration_matrix(
            scenarios={"two-lock-inversion": SCENARIOS["two-lock-inversion"]},
            max_runs=1_000, strategy="dfs")
        row = rows[0].as_dict()
        assert row["strategy"] == "dfs"
        # An unreduced run measures nothing extra: the ratio is moot.
        assert row["full_interleavings"] is None
        assert row["reduction"] is None
