"""Unit tests for DimmunixConfig validation and helpers."""

from __future__ import annotations

import pytest

from repro.core.config import (DimmunixConfig, STRONG_IMMUNITY, WEAK_IMMUNITY)
from repro.core.errors import ConfigError


class TestValidation:
    def test_defaults_are_valid(self):
        config = DimmunixConfig().validate()
        assert config.matching_depth == 4
        assert config.immunity == WEAK_IMMUNITY

    @pytest.mark.parametrize("field,value", [
        ("monitor_interval", 0),
        ("monitor_interval", -1),
        ("matching_depth", 0),
        ("calibration_na", 0),
        ("calibration_nt", 0),
        ("yield_timeout", 0),
        ("auto_disable_abort_threshold", 0),
        ("fp_window", 0),
        ("immunity", "medium"),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigError):
            DimmunixConfig(**{field: value}).validate()

    def test_max_stack_depth_must_cover_matching_depth(self):
        with pytest.raises(ConfigError):
            DimmunixConfig(matching_depth=8, max_stack_depth=4).validate()

    def test_history_path_parent_must_exist(self, tmp_path):
        good = DimmunixConfig(history_path=str(tmp_path / "h.json"))
        good.validate()
        with pytest.raises(ConfigError):
            DimmunixConfig(history_path=str(tmp_path / "missing" / "h.json")).validate()


class TestHelpers:
    def test_for_testing(self):
        config = DimmunixConfig.for_testing()
        assert config.history_path is None
        assert config.yield_timeout is None

    def test_strong_constructor(self):
        config = DimmunixConfig.strong()
        assert config.immunity == STRONG_IMMUNITY
        assert config.strong_immunity

    def test_with_overrides_returns_new_instance(self):
        base = DimmunixConfig()
        derived = base.with_overrides(matching_depth=6)
        assert derived.matching_depth == 6
        assert base.matching_depth == 4

    def test_with_overrides_validates(self):
        with pytest.raises(ConfigError):
            DimmunixConfig().with_overrides(matching_depth=0)

    def test_dict_roundtrip(self):
        config = DimmunixConfig(matching_depth=5, max_stack_depth=12,
                                external_synchronization=("spin_lock",))
        restored = DimmunixConfig.from_dict(config.to_dict())
        assert restored.matching_depth == 5
        assert restored.external_synchronization == ("spin_lock",)

    def test_from_dict_ignores_unknown_keys(self):
        config = DimmunixConfig.from_dict({"matching_depth": 3, "bogus": 1})
        assert config.matching_depth == 3
