"""Tests for the microbenchmark drivers and synthetic history generation."""

from __future__ import annotations

import pytest

from repro.core.callstack import CallStack
from repro.core.history import History
from repro.workloads.microbench import (MicrobenchConfig, PATH_DEPTH,
                                        call_through_path, capture_path_stack,
                                        random_path, run_simulated_microbench,
                                        run_threaded_microbench)
from repro.workloads.synth_history import (synthesize_history,
                                           synthesize_microbench_history)


class TestCallPaths:
    def test_call_through_path_reaches_leaf(self):
        marker = []
        call_through_path([0, 1, 2], lambda: marker.append(True))
        assert marker == [True]

    def test_random_path_length_and_range(self):
        import random
        path = random_path(random.Random(1))
        assert len(path) == PATH_DEPTH
        assert all(0 <= step < 4 for step in path)

    def test_different_paths_give_different_stacks(self):
        stack_a = capture_path_stack([0, 0, 1, 2])
        stack_b = capture_path_stack([0, 1, 0, 2])
        assert isinstance(stack_a, CallStack)
        assert stack_a != stack_b

    def test_same_path_gives_same_stack(self):
        assert capture_path_stack([1, 2, 3]) == capture_path_stack([1, 2, 3])


class TestThreadedMicrobench:
    def test_baseline_mode_runs(self):
        result = run_threaded_microbench(MicrobenchConfig(
            threads=2, locks=2, iterations=10, delta_out=0.0, mode="baseline"))
        assert result.lock_ops == 20
        assert result.throughput > 0
        assert result.stats == {}

    def test_full_mode_collects_stats(self):
        result = run_threaded_microbench(MicrobenchConfig(
            threads=2, locks=2, iterations=10, delta_out=0.0, mode="full"))
        assert result.lock_ops == 20
        assert result.stats["acquisitions"] == 20

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run_threaded_microbench(MicrobenchConfig(threads=1, mode="bogus"))

    def test_history_is_matched(self):
        history = synthesize_microbench_history(count=8, matching_depth=1,
                                                simulated=False, seed=3)
        result = run_threaded_microbench(MicrobenchConfig(
            threads=4, locks=4, iterations=15, delta_out=0.0, mode="full",
            history=history, matching_depth=1))
        # With depth-1 signatures over the same site universe, at least some
        # requests should have been matched (GO or YIELD both count work).
        assert result.stats["requests"] == 60


class TestSimulatedMicrobench:
    def test_baseline_and_full_do_same_work(self):
        base = run_simulated_microbench(MicrobenchConfig(
            threads=8, locks=4, iterations=10, mode="baseline"))
        full = run_simulated_microbench(MicrobenchConfig(
            threads=8, locks=4, iterations=10, mode="full"))
        assert base.lock_ops == full.lock_ops == 80
        assert base.duration > 0

    def test_detection_only_mode(self):
        result = run_simulated_microbench(MicrobenchConfig(
            threads=4, locks=4, iterations=10, mode="detection_only"))
        assert result.lock_ops == 40
        assert result.yields == 0


class TestSyntheticHistory:
    def test_exact_count_and_dedup(self):
        stacks = [CallStack.from_labels([f"f{i}:0", "g:1"]) for i in range(32)]
        history = synthesize_history(stacks, count=16, size=2, seed=1)
        assert len(history) == 16
        fingerprints = {sig.fingerprint for sig in history}
        assert len(fingerprints) == 16

    def test_signature_size_respected(self):
        stacks = [CallStack.from_labels([f"f{i}:0"]) for i in range(8)]
        history = synthesize_history(stacks, count=4, size=3, seed=2)
        assert all(sig.size == 3 for sig in history)

    def test_empty_universe_rejected(self):
        with pytest.raises(ValueError):
            synthesize_history([], count=1)

    def test_merges_into_existing_history(self):
        stacks = [CallStack.from_labels([f"f{i}:0"]) for i in range(8)]
        existing = History()
        synthesize_history(stacks, count=3, history=existing, seed=3)
        assert len(existing) == 3

    def test_microbench_history_simulated_matches_sim_stacks(self):
        history = synthesize_microbench_history(count=8, simulated=True, seed=4)
        assert len(history) == 8
        sample = history.signatures()[0].stacks[0]
        assert sample.top().function == "lock_wrapper"

    def test_microbench_history_threaded_uses_real_frames(self):
        history = synthesize_microbench_history(count=4, simulated=False, seed=5)
        sample = history.signatures()[0].stacks[0]
        functions = {frame.function for frame in sample}
        assert functions & {"_chain_0", "_chain_1", "_chain_2", "_chain_3"}

    def test_seed_determinism(self):
        first = synthesize_microbench_history(count=6, simulated=True, seed=9)
        second = synthesize_microbench_history(count=6, simulated=True, seed=9)
        assert {s.fingerprint for s in first} == {s.fingerprint for s in second}
