"""Unit tests for deadlock/starvation signatures."""

from __future__ import annotations

import pytest

from repro.core.callstack import CallStack
from repro.core.errors import SignatureError
from repro.core.signature import DEADLOCK, STARVATION, Signature


def make_signature(**kwargs):
    return Signature.from_stacks(
        [["lock:3", "update:1"], ["lock:3", "update:2"]], **kwargs)


class TestSignatureConstruction:
    def test_requires_at_least_one_stack(self):
        with pytest.raises(SignatureError):
            Signature([])

    def test_rejects_empty_stacks(self):
        with pytest.raises(SignatureError):
            Signature([CallStack(())])

    def test_rejects_unknown_kind(self):
        with pytest.raises(SignatureError):
            Signature.from_stacks([["a:1"]], kind="bogus")

    def test_rejects_bad_depth(self):
        with pytest.raises(SignatureError):
            Signature.from_stacks([["a:1"]], matching_depth=0)

    def test_stacks_are_sorted_multiset(self):
        a = Signature.from_stacks([["x:1"], ["a:1"]])
        b = Signature.from_stacks([["a:1"], ["x:1"]])
        assert a == b
        assert a.fingerprint == b.fingerprint

    def test_duplicate_stacks_allowed(self):
        sig = Signature.from_stacks([["a:1"], ["a:1"]])
        assert sig.size == 2


class TestSignatureIdentity:
    def test_fingerprint_stable_across_counters(self):
        sig = make_signature()
        fp = sig.fingerprint
        sig.record_avoidance()
        sig.record_abort()
        sig.matching_depth = 7
        assert sig.fingerprint == fp

    def test_kind_changes_fingerprint(self):
        deadlock = make_signature(kind=DEADLOCK)
        starvation = make_signature(kind=STARVATION)
        assert deadlock.fingerprint != starvation.fingerprint

    def test_equality_ignores_depth(self):
        assert make_signature(matching_depth=2) == make_signature(matching_depth=5)

    def test_hashable(self):
        assert len({make_signature(), make_signature()}) == 1


class TestSignatureMatching:
    def test_matching_stacks_uses_depth(self):
        sig = make_signature(matching_depth=1)
        runtime = CallStack.from_labels(["lock:3", "somewhere:9"])
        assert sig.matching_stacks(runtime) == [0, 1]
        sig.matching_depth = 2
        assert sig.matching_stacks(runtime) == []

    def test_stack_matches_explicit_depth(self):
        sig = make_signature(matching_depth=2)
        runtime = CallStack.from_labels(["lock:3", "elsewhere:7"])
        assert sig.stack_matches(sig.stacks[0], runtime, depth=1)
        assert not sig.stack_matches(sig.stacks[0], runtime, depth=2)


class TestSignatureCounters:
    def test_record_avoidance(self):
        sig = make_signature()
        assert sig.record_avoidance() == 1
        assert sig.record_avoidance() == 2

    def test_record_abort(self):
        sig = make_signature()
        assert sig.record_abort() == 1

    def test_record_occurrence(self):
        sig = make_signature()
        assert sig.occurrence_count == 1
        assert sig.record_occurrence() == 2

    def test_enabled_flag(self):
        sig = make_signature()
        assert sig.enabled
        sig.disabled = True
        assert not sig.enabled


class TestSignatureSerialization:
    def test_roundtrip(self):
        sig = make_signature(matching_depth=3)
        sig.record_avoidance()
        sig.disabled = True
        restored = Signature.from_dict(sig.to_dict())
        assert restored == sig
        assert restored.matching_depth == 3
        assert restored.avoidance_count == 1
        assert restored.disabled is True

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(SignatureError):
            Signature.from_dict({"stacks": "not-a-list-of-stacks"})

    def test_describe_contains_frames(self):
        text = make_signature().describe()
        assert "deadlock signature" in text
        assert "lock" in text
