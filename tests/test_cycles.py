"""Unit tests for deadlock-cycle and starvation detection."""

from __future__ import annotations

from repro.core.callstack import CallStack
from repro.core.cycles import (detect_all, find_deadlock_cycles, find_starvation,
                               pick_starvation_victim)
from repro.core.events import acquired_event, allow_event, yield_event
from repro.core.rag import ResourceAllocationGraph
from repro.core.signature import DEADLOCK, STARVATION


def stack(label):
    return CallStack.from_labels([label])


def build_two_thread_deadlock():
    rag = ResourceAllocationGraph()
    rag.apply(acquired_event(1, 101, stack("s1")))
    rag.apply(acquired_event(2, 102, stack("s2")))
    rag.apply(allow_event(1, 102, stack("w1")))
    rag.apply(allow_event(2, 101, stack("w2")))
    return rag


class TestDeadlockCycles:
    def test_two_thread_cycle_detected(self):
        rag = build_two_thread_deadlock()
        cycles = find_deadlock_cycles(rag)
        assert len(cycles) == 1
        cycle = cycles[0]
        assert cycle.kind == DEADLOCK
        assert set(cycle.threads) == {1, 2}
        assert set(cycle.locks) == {101, 102}
        # Signature comes from the hold-edge labels.
        labels = {s.top().function for s in cycle.stacks}
        assert labels == {"s1", "s2"}

    def test_cycle_reported_once(self):
        rag = build_two_thread_deadlock()
        cycles = find_deadlock_cycles(rag, roots=[1, 2, 1, 2])
        assert len(cycles) == 1

    def test_no_cycle_when_one_thread_not_waiting(self):
        rag = ResourceAllocationGraph()
        rag.apply(acquired_event(1, 101, stack("s1")))
        rag.apply(acquired_event(2, 102, stack("s2")))
        rag.apply(allow_event(1, 102, stack("w1")))
        assert find_deadlock_cycles(rag) == []

    def test_three_thread_cycle(self):
        rag = ResourceAllocationGraph()
        for thread, held, wanted in ((1, 101, 102), (2, 102, 103), (3, 103, 101)):
            rag.apply(acquired_event(thread, held, stack(f"h{thread}")))
        for thread, held, wanted in ((1, 101, 102), (2, 102, 103), (3, 103, 101)):
            rag.apply(allow_event(thread, wanted, stack(f"w{thread}")))
        cycles = find_deadlock_cycles(rag)
        assert len(cycles) == 1
        assert set(cycles[0].threads) == {1, 2, 3}
        assert len(cycles[0].stacks) == 3

    def test_two_disjoint_cycles(self):
        rag = ResourceAllocationGraph()
        for a, b, la, lb in ((1, 2, 101, 102), (3, 4, 103, 104)):
            rag.apply(acquired_event(a, la, stack(f"h{a}")))
            rag.apply(acquired_event(b, lb, stack(f"h{b}")))
            rag.apply(allow_event(a, lb, stack(f"w{a}")))
            rag.apply(allow_event(b, la, stack(f"w{b}")))
        cycles = find_deadlock_cycles(rag)
        assert len(cycles) == 2

    def test_yielding_thread_not_a_deadlock(self):
        # A thread parked by avoidance (request edge + yield edges) must not
        # be reported as deadlocked.
        rag = ResourceAllocationGraph()
        rag.apply(acquired_event(1, 101, stack("s1")))
        rag.apply(acquired_event(2, 102, stack("s2")))
        rag.apply(allow_event(1, 102, stack("w1")))
        rag.apply(yield_event(2, 101, stack("w2"), causes=((1, 101, stack("s1")),)))
        assert find_deadlock_cycles(rag) == []


class TestStarvation:
    def test_simple_yield_cycle(self):
        # T2 holds L102 and waits for L101 held by... nobody; T1 yields on T2.
        # T2 can progress, so nobody is starved.
        rag = ResourceAllocationGraph()
        rag.apply(acquired_event(2, 102, stack("s2")))
        rag.apply(yield_event(1, 102, stack("w1"), causes=((2, 102, stack("s2")),)))
        assert find_starvation(rag) == []

    def test_mutual_yield_starvation(self):
        # Two threads yielding on each other's holds: neither can progress.
        rag = ResourceAllocationGraph()
        rag.apply(acquired_event(1, 101, stack("s1")))
        rag.apply(acquired_event(2, 102, stack("s2")))
        rag.apply(yield_event(1, 102, stack("w1"), causes=((2, 102, stack("s2")),)))
        rag.apply(yield_event(2, 101, stack("w2"), causes=((1, 101, stack("s1")),)))
        starved = find_starvation(rag)
        assert len(starved) == 1
        cycle = starved[0]
        assert cycle.kind == STARVATION
        assert set(cycle.threads) == {1, 2}
        assert len(cycle.stacks) >= 2

    def test_yield_on_blocked_thread_is_starvation(self):
        # Figure 2 of the paper: T13 yields because of T22, T22 is allowed to
        # wait for L7 which T13 holds.
        rag = ResourceAllocationGraph()
        rag.apply(acquired_event(13, 7, stack("Sy")))
        rag.apply(acquired_event(22, 5, stack("Sx")))
        rag.apply(allow_event(22, 7, stack("wait7")))
        rag.apply(yield_event(13, 5, stack("want5"), causes=((22, 5, stack("Sx")),)))
        starved = find_starvation(rag)
        assert len(starved) == 1
        labels = sorted(s.top().function for s in starved[0].stacks)
        assert labels == ["Sx", "Sy"]

    def test_escape_route_prevents_starvation(self):
        # T1 yields on T2 and T3; T3 is blocked forever but T2 can progress,
        # so T1 is not starved (paper's figure 3 discussion).
        rag = ResourceAllocationGraph()
        rag.apply(acquired_event(2, 102, stack("s2")))
        rag.apply(acquired_event(3, 103, stack("s3")))
        rag.apply(allow_event(3, 104, stack("w3")))
        rag.apply(acquired_event(4, 104, stack("s4")))
        rag.apply(allow_event(4, 103, stack("w4")))   # 3 and 4 deadlock
        rag.apply(yield_event(1, 102, stack("w1"),
                              causes=((2, 102, stack("s2")), (3, 103, stack("s3")))))
        starved = find_starvation(rag)
        starved_threads = set()
        for cycle in starved:
            starved_threads.update(cycle.threads)
        assert 1 not in starved_threads

    def test_pick_victim_prefers_most_locks_held(self):
        rag = ResourceAllocationGraph()
        rag.apply(acquired_event(1, 101, stack("s1")))
        rag.apply(acquired_event(1, 105, stack("s5")))
        rag.apply(acquired_event(2, 102, stack("s2")))
        rag.apply(yield_event(1, 102, stack("w1"), causes=((2, 102, stack("s2")),)))
        rag.apply(yield_event(2, 101, stack("w2"), causes=((1, 101, stack("s1")),)))
        starved = find_starvation(rag)
        assert len(starved) == 1
        assert pick_starvation_victim(rag, starved[0]) == 1

    def test_detect_all_combines_both(self):
        rag = build_two_thread_deadlock()
        rag.apply(acquired_event(5, 105, stack("s5")))
        rag.apply(acquired_event(6, 106, stack("s6")))
        rag.apply(yield_event(5, 106, stack("w5"), causes=((6, 106, stack("s6")),)))
        rag.apply(yield_event(6, 105, stack("w6"), causes=((5, 105, stack("s5")),)))
        found = detect_all(rag)
        kinds = sorted(c.kind for c in found)
        assert kinds == [DEADLOCK, STARVATION]
