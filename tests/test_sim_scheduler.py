"""Tests for the deterministic simulation scheduler."""

from __future__ import annotations

import pytest

from repro.core.config import DimmunixConfig
from repro.core.errors import SimDeadlockError, SimulationError
from repro.sim import (Acquire, Compute, DimmunixBackend, Log, NullBackend,
                       Release, SimScheduler, TryAcquire, call_site,
                       lock_order_program, philosopher_program,
                       random_workload_program)


def make_scheduler(backend=None, seed=0):
    return SimScheduler(backend=backend, seed=seed)


class TestBasicExecution:
    def test_single_thread_lock_unlock(self):
        scheduler = make_scheduler()
        lock = scheduler.new_lock("L")

        def program():
            yield Acquire(lock, call_site("f:1"))
            yield Compute(0.01)
            yield Release(lock)

        scheduler.add_thread(program)
        result = scheduler.run()
        assert result.completed
        assert result.lock_ops == 1
        assert result.virtual_time >= 0.01

    def test_two_threads_contend_on_one_lock(self):
        scheduler = make_scheduler()
        lock = scheduler.new_lock("L")

        def program():
            yield Acquire(lock, call_site("f:1"))
            yield Compute(0.01)
            yield Release(lock)

        scheduler.add_thread(program)
        scheduler.add_thread(program)
        result = scheduler.run()
        assert result.completed
        assert result.lock_ops == 2
        assert result.blocks >= 1

    def test_reentrant_acquire(self):
        scheduler = make_scheduler()
        lock = scheduler.new_lock("L")

        def program():
            yield Acquire(lock, call_site("outer:1"))
            yield Acquire(lock, call_site("inner:2"))
            yield Release(lock)
            yield Release(lock)

        scheduler.add_thread(program)
        result = scheduler.run()
        assert result.completed
        assert result.lock_ops == 2

    def test_try_acquire_failure_reports_false(self):
        scheduler = make_scheduler()
        lock = scheduler.new_lock("L")
        outcomes = []

        def holder():
            yield Acquire(lock, call_site("h:1"))
            yield Compute(0.1)
            yield Release(lock)

        def trier():
            yield Compute(0.01)
            ok = yield TryAcquire(lock, call_site("t:1"))
            outcomes.append(ok)
            if ok:
                yield Release(lock)

        scheduler.add_thread(holder)
        scheduler.add_thread(trier)
        result = scheduler.run()
        assert result.completed
        assert outcomes == [False]
        assert result.failed_trylocks == 1

    def test_log_action_recorded(self):
        scheduler = make_scheduler()

        def program():
            yield Log("hello")

        scheduler.add_thread(program)
        result = scheduler.run()
        assert any("hello" in line for line in result.log)

    def test_release_without_hold_raises(self):
        scheduler = make_scheduler()
        lock = scheduler.new_lock("L")

        def program():
            yield Release(lock)

        scheduler.add_thread(program)
        with pytest.raises(SimulationError):
            scheduler.run()

    def test_determinism_same_seed_same_result(self):
        def build(seed):
            scheduler = make_scheduler(seed=seed)
            locks = [scheduler.new_lock(f"L{i}") for i in range(4)]
            for i in range(6):
                scheduler.add_thread(random_workload_program(locks, seed=i,
                                                             iterations=10))
            return scheduler.run()

        first = build(42)
        second = build(42)
        assert first.summary() == second.summary()


class TestDeadlockWithoutAvoidance:
    def test_opposite_lock_order_deadlocks(self):
        scheduler = make_scheduler(backend=NullBackend())
        a = scheduler.new_lock("A")
        b = scheduler.new_lock("B")
        scheduler.add_thread(lock_order_program(a, b, "s1", hold_time=0.01))
        scheduler.add_thread(lock_order_program(b, a, "s2", hold_time=0.01))
        result = scheduler.run()
        assert result.deadlocked
        assert not result.completed
        assert result.stall is not None
        assert len(result.stall.waiting) == 2

    def test_raise_on_deadlock_option(self):
        scheduler = make_scheduler(backend=NullBackend())
        a = scheduler.new_lock("A")
        b = scheduler.new_lock("B")
        scheduler.add_thread(lock_order_program(a, b, "s1", hold_time=0.01))
        scheduler.add_thread(lock_order_program(b, a, "s2", hold_time=0.01))
        with pytest.raises(SimDeadlockError):
            scheduler.run(raise_on_deadlock=True)

    def test_philosophers_deadlock(self):
        scheduler = make_scheduler(backend=NullBackend(), seed=3)
        forks = [scheduler.new_lock(f"fork-{i}") for i in range(5)]
        for seat in range(5):
            scheduler.add_thread(philosopher_program(
                forks[seat], forks[(seat + 1) % 5], seat,
                think_time=0.0, eat_time=0.01))
        result = scheduler.run()
        # With zero think time and uniform grabbing, the cycle forms.
        assert result.deadlocked


class TestDimmunixBackendInSim:
    def test_first_run_deadlocks_and_saves_signature(self):
        backend = DimmunixBackend(config=DimmunixConfig.for_testing())
        scheduler = make_scheduler(backend=backend)
        a = scheduler.new_lock("A")
        b = scheduler.new_lock("B")
        scheduler.add_thread(lock_order_program(a, b, "s1", hold_time=0.01))
        scheduler.add_thread(lock_order_program(b, a, "s2", hold_time=0.01))
        result = scheduler.run()
        assert result.deadlocked
        assert len(backend.history) == 1
        signature = backend.history.signatures()[0]
        assert signature.kind == "deadlock"
        assert signature.size == 2

    def test_second_run_with_signature_is_immune(self):
        backend = DimmunixBackend(config=DimmunixConfig.for_testing())
        first = make_scheduler(backend=backend)
        a1, b1 = first.new_lock("A"), first.new_lock("B")
        first.add_thread(lock_order_program(a1, b1, "s1", hold_time=0.01))
        first.add_thread(lock_order_program(b1, a1, "s2", hold_time=0.01))
        assert first.run().deadlocked

        # Second "execution": fresh scheduler and locks, same history.
        backend2 = DimmunixBackend(config=DimmunixConfig.for_testing(),
                                   history=backend.history)
        second = make_scheduler(backend=backend2)
        a2, b2 = second.new_lock("A"), second.new_lock("B")
        second.add_thread(lock_order_program(a2, b2, "s1", hold_time=0.01))
        second.add_thread(lock_order_program(b2, a2, "s2", hold_time=0.01))
        result = second.run()
        assert result.completed
        assert not result.deadlocked
        assert result.yields >= 1

    def test_immunity_does_not_serialize_safe_paths(self):
        # Same path in both threads ({s1, s1}) is not the saved pattern and
        # must not cause yields.
        backend = DimmunixBackend(config=DimmunixConfig.for_testing())
        first = make_scheduler(backend=backend)
        a1, b1 = first.new_lock("A"), first.new_lock("B")
        first.add_thread(lock_order_program(a1, b1, "s1", hold_time=0.01))
        first.add_thread(lock_order_program(b1, a1, "s2", hold_time=0.01))
        first.run()

        backend2 = DimmunixBackend(config=DimmunixConfig.for_testing(),
                                   history=backend.history)
        second = make_scheduler(backend=backend2)
        a2, b2 = second.new_lock("A"), second.new_lock("B")
        second.add_thread(lock_order_program(a2, b2, "s1", hold_time=0.01))
        second.add_thread(lock_order_program(a2, b2, "s1", hold_time=0.01))
        result = second.run()
        assert result.completed
        assert result.yields == 0

    def test_random_workload_with_dimmunix_completes(self):
        backend = DimmunixBackend(config=DimmunixConfig.for_testing())
        scheduler = make_scheduler(backend=backend, seed=7)
        locks = [scheduler.new_lock(f"L{i}") for i in range(8)]
        for i in range(16):
            scheduler.add_thread(random_workload_program(locks, seed=100 + i,
                                                         iterations=20))
        result = scheduler.run()
        assert result.completed
        assert result.lock_ops == 16 * 20
